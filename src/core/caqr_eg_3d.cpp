#include "core/caqr_eg_3d.hpp"

#include <algorithm>
#include <map>

#include "core/caqr_eg_1d.hpp"
#include "core/params.hpp"
#include "la/blas.hpp"
#include "la/flops.hpp"
#include "la/packing.hpp"
#include "mm/layout.hpp"
#include "mm/mm_3d.hpp"
#include "mm/redistribute.hpp"

namespace qr3d::core {

using la::index_t;

namespace detail {

BaseConversionPlan BaseConversionPlan::make(index_t m, index_t n, int P) {
  QR3D_CHECK(m >= n && n >= 1 && P >= 1, "BaseConversionPlan: need m >= n >= 1");
  BaseConversionPlan plan;
  plan.P = P;
  plan.Pprime = static_cast<int>(std::min<index_t>(m, P));

  // P* = min(P, floor(m/n)), decremented until every group holds >= n rows.
  // (The paper asserts floor(m/P*) >= n rows per representative, but the
  // processor dealing can leave a group short by rounding; shrinking P*
  // restores the invariant and changes the costs by at most a constant.)
  for (plan.Pstar = static_cast<int>(std::max<index_t>(1, std::min<index_t>(P, m / n)));;
       --plan.Pstar) {
    plan.group_rows.assign(static_cast<std::size_t>(plan.Pstar), {});
    for (index_t r = 0; r < m; ++r) {
      const int q = static_cast<int>(r % P);
      plan.group_rows[static_cast<std::size_t>(q % plan.Pstar)].push_back(r);
    }
    index_t min_rows = m;
    for (const auto& g : plan.group_rows) min_rows = std::min<index_t>(min_rows, g.size());
    if (min_rows >= n || plan.Pstar == 1) break;
  }
  QR3D_ASSERT(static_cast<index_t>(plan.group_rows[0].size()) >= n,
              "BaseConversionPlan: representative 0 short of rows");
  plan.Pdd = static_cast<int>(std::min<index_t>(plan.Pstar, n));

  // Phase 2: top rows (r < n) move to rep 0; rep 0 hands back an equal
  // number of its rows >= n, lowest-index first, round-robin by rep.
  plan.top_rows.assign(static_cast<std::size_t>(plan.Pstar), {});
  plan.given_rows.assign(static_cast<std::size_t>(plan.Pstar), {});
  for (int g = 1; g < plan.Pstar; ++g)
    for (index_t r : plan.group_rows[static_cast<std::size_t>(g)])
      if (r < n) plan.top_rows[static_cast<std::size_t>(g)].push_back(r);

  std::vector<index_t> candidates;  // rep 0's rows >= n, ascending
  for (index_t r : plan.group_rows[0])
    if (r >= n) candidates.push_back(r);
  std::size_t next = 0;
  for (int g = 1; g < plan.Pstar; ++g) {
    for (std::size_t k = 0; k < plan.top_rows[static_cast<std::size_t>(g)].size(); ++k) {
      QR3D_ASSERT(next < candidates.size(), "BaseConversionPlan: rep 0 cannot rebalance");
      plan.given_rows[static_cast<std::size_t>(g)].push_back(candidates[next++]);
    }
  }

  plan.final_rows.assign(static_cast<std::size_t>(plan.Pstar), {});
  for (index_t r = 0; r < n; ++r) plan.final_rows[0].push_back(r);
  for (std::size_t k = next; k < candidates.size(); ++k) plan.final_rows[0].push_back(candidates[k]);
  for (int g = 1; g < plan.Pstar; ++g) {
    auto& fr = plan.final_rows[static_cast<std::size_t>(g)];
    for (index_t r : plan.group_rows[static_cast<std::size_t>(g)])
      if (r >= n) fr.push_back(r);
    for (index_t r : plan.given_rows[static_cast<std::size_t>(g)]) fr.push_back(r);
    std::sort(fr.begin(), fr.end());
    QR3D_ASSERT(static_cast<index_t>(fr.size()) >= n, "BaseConversionPlan: rep short of rows");
  }
  return plan;
}

}  // namespace detail

namespace {

/// Rows of `a` as a map position -> values given the ascending row list.
la::Matrix select_rows(const la::Matrix& a, const std::vector<index_t>& all_rows,
                       const std::vector<index_t>& wanted) {
  std::map<index_t, index_t> pos;
  for (std::size_t k = 0; k < all_rows.size(); ++k) pos[all_rows[k]] = static_cast<index_t>(k);
  la::Matrix out(static_cast<index_t>(wanted.size()), a.cols());
  for (std::size_t k = 0; k < wanted.size(); ++k) {
    const index_t src = pos.at(wanted[k]);
    for (index_t j = 0; j < a.cols(); ++j) out(static_cast<index_t>(k), j) = a(src, j);
  }
  return out;
}

/// Scatter an n x cols matrix from rcomm rank 0 into CyclicRows(n, cols, P, 0)
/// local blocks.
la::Matrix scatter_cyclic(backend::Comm& rcomm, const la::Matrix& full_on_root, index_t n,
                          index_t cols) {
  const int P = rcomm.size();
  mm::CyclicRows layout(n, cols, P, 0);
  std::vector<std::size_t> counts(static_cast<std::size_t>(P));
  for (int q = 0; q < P; ++q)
    counts[static_cast<std::size_t>(q)] = static_cast<std::size_t>(layout.local_count(q));
  std::vector<std::vector<double>> blocks;
  if (rcomm.rank() == 0) {
    blocks.resize(static_cast<std::size_t>(P));
    for (int q = 0; q < P; ++q) {
      const index_t nloc = layout.local_rows(q);
      la::Matrix b(nloc, cols);
      for (index_t li = 0; li < nloc; ++li)
        for (index_t j = 0; j < cols; ++j) b(li, j) = full_on_root(layout.global_row(q, li), j);
      blocks[static_cast<std::size_t>(q)] = la::to_vector(b.view());
    }
  }
  auto mine = coll::scatter(rcomm, 0, blocks, counts);
  return la::from_vector(mm::CyclicRows(n, cols, P, 0).local_rows(rcomm.rank()), cols, mine);
}

/// Base case (Section 7.1): layout conversion + 1D-CAQR-EG + reversal.
CyclicQr base_case(backend::Comm& comm, la::ConstMatrixView A_local, index_t m, index_t n, int shift,
                   index_t bstar) {
  const int P = comm.size();
  // Normalize the shift away: renumber ranks so the owner of row 0 becomes
  // relative rank 0; all layout math below is in relative ranks (r mod P).
  const int rr = ((comm.rank() - shift) % P + P) % P;
  backend::Comm rcomm = comm.split(0, rr);
  QR3D_ASSERT(rcomm.rank() == rr, "base_case: rank renumbering failed");

  const auto plan = detail::BaseConversionPlan::make(m, n, P);
  const mm::CyclicRows cyc(m, n, P, 0);  // layout w.r.t. relative ranks

  // --- Phase 1: gather rows within each group to its representative. -------
  const bool owns_rows = rr < plan.Pprime;
  const int g = owns_rows ? rr % plan.Pstar : -1;
  backend::Comm gcomm = rcomm.split(g, rr);
  const bool is_rep = owns_rows && rr == g;

  la::Matrix grouped;  // representative's rows, ordered by plan.group_rows[g]
  if (owns_rows) {
    std::vector<std::size_t> counts(static_cast<std::size_t>(gcomm.size()));
    for (int i = 0; i < gcomm.size(); ++i)
      counts[static_cast<std::size_t>(i)] =
          static_cast<std::size_t>(cyc.local_count(g + i * plan.Pstar));
    auto blocks = coll::gather(gcomm, 0, la::to_vector(A_local), counts);
    if (is_rep) {
      const auto& rows = plan.group_rows[static_cast<std::size_t>(g)];
      std::map<index_t, index_t> pos;
      for (std::size_t k = 0; k < rows.size(); ++k) pos[rows[k]] = static_cast<index_t>(k);
      grouped = la::Matrix(static_cast<index_t>(rows.size()), n);
      for (int i = 0; i < gcomm.size(); ++i) {
        const int member = g + i * plan.Pstar;
        const index_t nloc = cyc.local_rows(member);
        la::Matrix b = la::from_vector(nloc, n, blocks[static_cast<std::size_t>(i)]);
        for (index_t li = 0; li < nloc; ++li) {
          const index_t dst = pos.at(cyc.global_row(member, li));
          for (index_t j = 0; j < n; ++j) grouped(dst, j) = b(li, j);
        }
      }
    }
  }

  // --- Phase 2: move the top n rows to rep 0, rebalancing with a scatter. --
  backend::Comm repcomm = rcomm.split(is_rep ? 0 : -1, rr);
  std::vector<std::size_t> top_counts(static_cast<std::size_t>(plan.Pstar));
  for (int h = 0; h < plan.Pstar; ++h)
    top_counts[static_cast<std::size_t>(h)] =
        plan.top_rows[static_cast<std::size_t>(h)].size() * static_cast<std::size_t>(n);

  la::Matrix converted;  // rows ordered by plan.final_rows[g]
  if (is_rep) {
    const auto& rows_g = plan.group_rows[static_cast<std::size_t>(g)];
    la::Matrix my_top = select_rows(grouped, rows_g, plan.top_rows[static_cast<std::size_t>(g)]);
    auto gathered = coll::gather(repcomm, 0, la::to_vector(my_top.view()), top_counts);

    std::vector<std::vector<double>> give_blocks;
    if (g == 0) {
      give_blocks.resize(static_cast<std::size_t>(plan.Pstar));
      for (int h = 1; h < plan.Pstar; ++h)
        give_blocks[static_cast<std::size_t>(h)] = la::to_vector(
            select_rows(grouped, rows_g, plan.given_rows[static_cast<std::size_t>(h)]).view());
    }
    auto received = coll::scatter(repcomm, 0, give_blocks, top_counts);

    // Assemble the converted local matrix from: kept rows, plus (rep 0) all
    // gathered top rows, plus (rep > 0) the rebalancing rows.
    const auto& fin = plan.final_rows[static_cast<std::size_t>(g)];
    std::map<index_t, index_t> pos;
    for (std::size_t k = 0; k < fin.size(); ++k) pos[fin[k]] = static_cast<index_t>(k);
    converted = la::Matrix(static_cast<index_t>(fin.size()), n);
    auto place = [&](index_t global_row, const double* vals) {
      auto it = pos.find(global_row);
      QR3D_ASSERT(it != pos.end(), "base_case: misrouted row");
      for (index_t j = 0; j < n; ++j) converted(it->second, j) = vals[static_cast<std::size_t>(j)];
    };
    std::vector<double> rowbuf(static_cast<std::size_t>(n));
    auto copy_row = [&](const la::Matrix& src, index_t li) {
      for (index_t j = 0; j < n; ++j) rowbuf[static_cast<std::size_t>(j)] = src(li, j);
      return rowbuf.data();
    };
    if (g == 0) {
      // All rows < n (own + gathered), plus own rows >= n not given away.
      std::vector<bool> given(static_cast<std::size_t>(m), false);
      for (int h = 1; h < plan.Pstar; ++h)
        for (index_t r : plan.given_rows[static_cast<std::size_t>(h)])
          given[static_cast<std::size_t>(r)] = true;
      for (std::size_t k = 0; k < rows_g.size(); ++k)
        if (!given[static_cast<std::size_t>(rows_g[k])])
          place(rows_g[k], copy_row(grouped, static_cast<index_t>(k)));
      for (int h = 1; h < plan.Pstar; ++h) {
        la::Matrix tops = la::from_vector(
            static_cast<index_t>(plan.top_rows[static_cast<std::size_t>(h)].size()), n,
            gathered[static_cast<std::size_t>(h)]);
        for (std::size_t k = 0; k < plan.top_rows[static_cast<std::size_t>(h)].size(); ++k)
          place(plan.top_rows[static_cast<std::size_t>(h)][k], copy_row(tops, static_cast<index_t>(k)));
      }
    } else {
      for (std::size_t k = 0; k < rows_g.size(); ++k)
        if (rows_g[k] >= n) place(rows_g[k], copy_row(grouped, static_cast<index_t>(k)));
      la::Matrix recv_rows = la::from_vector(
          static_cast<index_t>(plan.given_rows[static_cast<std::size_t>(g)].size()), n, received);
      for (std::size_t k = 0; k < plan.given_rows[static_cast<std::size_t>(g)].size(); ++k)
        place(plan.given_rows[static_cast<std::size_t>(g)][k],
              copy_row(recv_rows, static_cast<index_t>(k)));
    }
  }

  // --- Inner 1D-CAQR-EG over the representatives. ---------------------------
  DistributedQr r1d;
  if (is_rep) {
    CaqrEg1dOptions inner;
    inner.b = bstar;
    r1d = caqr_eg_1d(repcomm, converted.view(), inner);
  }

  // --- Reverse phase 2 for V. ----------------------------------------------
  la::Matrix v_grouped;  // V rows ordered by plan.group_rows[g]
  if (is_rep) {
    const auto& fin = plan.final_rows[static_cast<std::size_t>(g)];
    std::vector<std::vector<double>> back_blocks;
    if (g == 0) {
      back_blocks.resize(static_cast<std::size_t>(plan.Pstar));
      for (int h = 1; h < plan.Pstar; ++h)
        back_blocks[static_cast<std::size_t>(h)] = la::to_vector(
            select_rows(r1d.V, fin, plan.top_rows[static_cast<std::size_t>(h)]).view());
    }
    auto top_back = coll::scatter(repcomm, 0, back_blocks, top_counts);
    auto given_back = coll::gather(
        repcomm, 0,
        la::to_vector(select_rows(r1d.V, fin, plan.given_rows[static_cast<std::size_t>(g)]).view()),
        [&] {
          std::vector<std::size_t> counts(static_cast<std::size_t>(plan.Pstar));
          for (int h = 0; h < plan.Pstar; ++h)
            counts[static_cast<std::size_t>(h)] =
                plan.given_rows[static_cast<std::size_t>(h)].size() * static_cast<std::size_t>(n);
          return counts;
        }());

    const auto& rows_g = plan.group_rows[static_cast<std::size_t>(g)];
    std::map<index_t, index_t> pos;
    for (std::size_t k = 0; k < rows_g.size(); ++k) pos[rows_g[k]] = static_cast<index_t>(k);
    v_grouped = la::Matrix(static_cast<index_t>(rows_g.size()), n);
    auto place = [&](index_t global_row, la::ConstMatrixView src, index_t li) {
      const index_t dst = pos.at(global_row);
      for (index_t j = 0; j < n; ++j) v_grouped(dst, j) = src(li, j);
    };
    // Rows I kept through phase 2.
    std::map<index_t, index_t> fpos;
    for (std::size_t k = 0; k < fin.size(); ++k) fpos[fin[k]] = static_cast<index_t>(k);
    for (index_t r : rows_g) {
      // Rows that left this rep in phase 2 are absent from `fin`; they come
      // back via the reversal messages below.
      auto it = fpos.find(r);
      if (it != fpos.end()) place(r, r1d.V.view(), it->second);
    }
    if (g == 0) {
      // Rows given away in phase 2 come back via the gather.
      for (int h = 1; h < plan.Pstar; ++h) {
        la::Matrix back = la::from_vector(
            static_cast<index_t>(plan.given_rows[static_cast<std::size_t>(h)].size()), n,
            given_back[static_cast<std::size_t>(h)]);
        for (std::size_t k = 0; k < plan.given_rows[static_cast<std::size_t>(h)].size(); ++k)
          place(plan.given_rows[static_cast<std::size_t>(h)][k], back.view(),
                static_cast<index_t>(k));
      }
    } else {
      la::Matrix back = la::from_vector(
          static_cast<index_t>(plan.top_rows[static_cast<std::size_t>(g)].size()), n, top_back);
      for (std::size_t k = 0; k < plan.top_rows[static_cast<std::size_t>(g)].size(); ++k)
        place(plan.top_rows[static_cast<std::size_t>(g)][k], back.view(), static_cast<index_t>(k));
    }
  }

  // --- Reverse phase 1: scatter V rows back to the group members. ----------
  CyclicQr out;
  if (owns_rows) {
    std::vector<std::size_t> counts(static_cast<std::size_t>(gcomm.size()));
    for (int i = 0; i < gcomm.size(); ++i)
      counts[static_cast<std::size_t>(i)] =
          static_cast<std::size_t>(cyc.local_count(g + i * plan.Pstar));
    std::vector<std::vector<double>> blocks;
    if (is_rep) {
      const auto& rows_g = plan.group_rows[static_cast<std::size_t>(g)];
      blocks.resize(static_cast<std::size_t>(gcomm.size()));
      for (int i = 0; i < gcomm.size(); ++i) {
        const int member = g + i * plan.Pstar;
        std::vector<index_t> member_rows;
        for (index_t li = 0; li < cyc.local_rows(member); ++li)
          member_rows.push_back(cyc.global_row(member, li));
        blocks[static_cast<std::size_t>(i)] =
            la::to_vector(select_rows(v_grouped, rows_g, member_rows).view());
      }
    }
    auto mine = coll::scatter(gcomm, 0, blocks, counts);
    out.V = la::from_vector(cyc.local_rows(rr), n, mine);
  } else {
    out.V = la::Matrix(0, n);
  }

  // --- T and R: scatter from rep 0 (= rcomm rank 0) to row-cyclic. ---------
  out.T = scatter_cyclic(rcomm, r1d.T, n, n);
  out.R = scatter_cyclic(rcomm, r1d.R, n, n);
  return out;
}

/// The qr-eg recursion (Section 7.2).  `shift` tracks how the current
/// submatrix's rows map to ranks: global row r lives on (r + shift) mod P.
CyclicQr recurse(backend::Comm& comm, const CaqrEg3dOptions& opts, la::ConstMatrixView A_local,
                 index_t m, index_t n, int shift, index_t b, index_t bstar) {
  const int P = comm.size();
  if (n <= b) {
    return base_case(comm, A_local, m, n, shift, bstar);
  }
  const int me = comm.rank();
  const index_t n1 = n / 2;
  const index_t n2 = n - n1;
  const index_t mp = A_local.rows();

  // Line 5: left recursion on the first n1 columns (same layout).
  CyclicQr left = recurse(comm, opts, A_local.left_cols(n1), m, n1, shift, b, bstar);

  const mm::CyclicRows lay_m_n1(m, n1, P, shift);
  const mm::CyclicRows lay_m_n2(m, n2, P, shift);
  const mm::CyclicRows lay_n1_n1(n1, n1, P, shift);
  const mm::CyclicRows lay_n1_n2(n1, n2, P, shift);
  const mm::CyclicCols lay_vlh(n1, m, P, shift);  // V_L^H

  // Line 6: M1 = V_L^H * [A12; A22]  (I = n1, J = n2, K = m).
  auto m1_buf = mm::mm_3d(comm, n1, n2, m, lay_vlh, la::to_vector_rowmajor(left.V.view()), lay_m_n2,
                          la::to_vector(A_local.right_cols(n2)), lay_n1_n2, opts.alltoall_alg);

  // Line 7: M2 = T_L^H * M1  (I = n1, J = n2, K = n1).
  const mm::CyclicCols lay_tlh(n1, n1, P, shift);
  auto m2_buf = mm::mm_3d(comm, n1, n2, n1, lay_tlh, la::to_vector_rowmajor(left.T.view()), lay_n1_n2, m1_buf,
                          lay_n1_n2, opts.alltoall_alg);

  // Line 8: [B12; B22] = [A12; A22] - V_L * M2  (I = m, J = n2, K = n1).
  auto vm2_buf = mm::mm_3d(comm, m, n2, n1, lay_m_n1, la::to_vector(left.V.view()), lay_n1_n2,
                           m2_buf, lay_m_n2, opts.alltoall_alg);
  la::Matrix B = mm::unpack_rows(lay_m_n2, me, vm2_buf);
  la::scale(-1.0, B.view());
  la::add(1.0, A_local.right_cols(n2), B.view());
  comm.charge_flops(la::flops::add(mp, n2));

  // Line 9: right recursion on B22 = B's rows n1..m, which is row-cyclic
  // with shift advanced by n1.
  const index_t rows_above = mm::CyclicRows(n1, 1, P, shift).local_rows(me);
  CyclicQr right = recurse(comm, opts,
                           la::ConstMatrixView(B.view()).block(rows_above, 0, mp - rows_above, n2),
                           m - n1, n2, shift + static_cast<int>(n1), b, bstar);

  // Line 10: V = [V_L, [0; V_R]] — purely local thanks to the shift match.
  CyclicQr out;
  out.V = la::Matrix(mp, n);
  la::assign<double>(out.V.block(0, 0, mp, n1), left.V.view());
  la::assign<double>(out.V.block(rows_above, n1, mp - rows_above, n2), right.V.view());

  // Line 11: M3 = V_L^H [0; V_R] = (V_L's rows >= n1)^H * V_R
  // (I = n1, J = n2, K = m - n1), all under shift + n1.
  const mm::CyclicCols lay_vlbh(n1, m - n1, P, shift + static_cast<int>(n1));
  const mm::CyclicRows lay_vr(m - n1, n2, P, shift + static_cast<int>(n1));
  auto m3_buf = mm::mm_3d(
      comm, n1, n2, m - n1, lay_vlbh,
      la::to_vector_rowmajor(la::ConstMatrixView(left.V.view()).block(rows_above, 0, mp - rows_above, n1)),
      lay_vr, la::to_vector(right.V.view()), lay_n1_n2, opts.alltoall_alg);

  // Line 12: M4 = M3 * T_R  (I = n1, J = n2, K = n2).
  const mm::CyclicRows lay_tr(n2, n2, P, shift + static_cast<int>(n1));
  auto m4_buf = mm::mm_3d(comm, n1, n2, n2, lay_n1_n2, m3_buf, lay_tr,
                          la::to_vector(right.T.view()), lay_n1_n2, opts.alltoall_alg);

  // Line 13: T12 = -T_L * M4  (I = n1, J = n2, K = n1).
  auto t12_buf = mm::mm_3d(comm, n1, n2, n1, lay_n1_n1, la::to_vector(left.T.view()), lay_n1_n2,
                           m4_buf, lay_n1_n2, opts.alltoall_alg);

  // Assemble T = [[T_L, -T_L M4], [0, T_R]] and R = [[R_L, B12], [0, R_R]]
  // locally: rows < n1 of T/R live where T_L/R_L rows live; rows >= n1 where
  // T_R/R_R rows live (the shifts line up by construction).
  const mm::CyclicRows lay_t(n, n, P, shift);
  const index_t t_rows = lay_t.local_rows(me);
  const index_t t_above = mm::CyclicRows(n1, 1, P, shift).local_rows(me);
  la::Matrix T12 = mm::unpack_rows(lay_n1_n2, me, t12_buf);
  la::scale(-1.0, T12.view());

  out.T = la::Matrix(t_rows, n);
  la::assign<double>(out.T.block(0, 0, t_above, n1), left.T.view());
  la::assign<double>(out.T.block(0, n1, t_above, n2), la::ConstMatrixView(T12.view()));
  la::assign<double>(out.T.block(t_above, n1, t_rows - t_above, n2), right.T.view());

  out.R = la::Matrix(t_rows, n);
  la::assign<double>(out.R.block(0, 0, t_above, n1), left.R.view());
  la::assign<double>(out.R.block(0, n1, t_above, n2),
                     la::ConstMatrixView(B.view()).top_rows(t_above));
  la::assign<double>(out.R.block(t_above, n1, t_rows - t_above, n2), right.R.view());
  return out;
}

}  // namespace

CyclicQr caqr_eg_3d(backend::Comm& comm, la::ConstMatrixView A_local, index_t m, index_t n,
                    CaqrEg3dOptions opts) {
  const int P = comm.size();
  QR3D_CHECK(m >= n && n >= 1, "caqr_eg_3d: need m >= n >= 1");
  QR3D_CHECK(A_local.cols() == n, "caqr_eg_3d: local column count");
  QR3D_CHECK(A_local.rows() == mm::CyclicRows(m, n, P, 0).local_rows(comm.rank()),
             "caqr_eg_3d: local row count must match the row-cyclic layout");

  const index_t b = opts.b > 0 ? std::min(opts.b, n) : block_size_3d(m, n, P, opts.delta);
  const index_t bstar =
      opts.b_star > 0 ? std::min(opts.b_star, b) : base_block_size_3d(b, P, opts.epsilon);
  return recurse(comm, opts, A_local, m, n, /*shift=*/0, b, bstar);
}

}  // namespace qr3d::core
