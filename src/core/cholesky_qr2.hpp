// CholeskyQR2: the conditioning-dependent fast path for tall-skinny QR.
//
// One CholeskyQR pass is three steps — Gram matrix G = A^T A (local gemm +
// one all-reduce of the packed upper triangle), Cholesky G = R^T R, and the
// triangular solve Q = A R^{-1} — and costs O(mn^2/P) *gemm-shaped* flops,
// O(n^2) words and O(log P) messages.  Its orthogonality error grows like
// kappa(A)^2 * eps, so a second pass on Q recovers O(eps) orthogonality
// whenever the first pass succeeds at all ("CholeskyQR2", see also
// "Communication-avoiding CholeskyQR2 for rectangular matrices",
// arXiv 1710.08471).  Against TSQR (Lemma 5) that trades a reduction tree of
// n^2-word messages for two n(n+1)/2-word all-reduces and replaces
// Householder panel flops with pure gemm/trsm — a wide predicted-time win on
// well-conditioned inputs (cost::cholesky_qr2 vs cost::tsqr), and the reason
// the serving layer's `fast`/`balanced` accuracy contract dispatches here
// (serve/batch_solver.cpp).
//
// Correctness is *conditional*: the Gram matrix squares the condition
// number, so for kappa(A) ≳ 1/sqrt(eps) the Cholesky meets a non-positive
// pivot and the factorization is impossible in the working precision.  That
// failure is a typed, deterministic outcome (CholeskyQrUnstable), and an
// optional a-priori guard estimates kappa from the already-reduced Gram
// matrix (power iteration — purely local, the all-reduce is reused) so
// callers can fall back to TSQR *before* wasting the solve.
//
// Mixed precision composes on the same structure: with factor_in_float the
// first pass runs entirely in float (gram, Cholesky, solve), and the second
// pass — which *is* the reorthogonalization — refines in double.  The
// doubled-precision refinement restores O(eps_double) orthogonality provided
// kappa(A)^2 * eps_float stays below 1, which is why the fast contract pairs
// float with the tighter kFastMaxCondition guard.
//
// Unlike the Householder algorithms the result is an *explicit* Q, not a
// (V, T) representation; R is replicated on every rank (the all-reduce
// already paid for that).  The row distribution of A is immaterial — each
// rank contributes its local rows to the Gram sum and gets the matching rows
// of Q back — so block and cyclic layouts both work unchanged.
#pragma once

#include <stdexcept>

#include "backend/comm.hpp"
#include "coll/coll.hpp"
#include "la/matrix.hpp"

namespace qr3d::core {

/// Dispatch guard defaults for the serving layer's accuracy contract
/// (docs/TUNING.md "Accuracy/speed contract"): the estimated kappa(A) above
/// which CholeskyQR2 is not attempted.  Balanced (double-double) tolerates
/// kappa^2 * eps_double ~ 2e-4 after the first pass; fast (float first pass)
/// needs kappa^2 * eps_float < 1.
inline constexpr double kBalancedMaxCondition = 1e6;
inline constexpr double kFastMaxCondition = 1e3;

/// Thrown when CholeskyQR2 cannot factor in the working precision: either
/// the a-priori condition guard tripped, or the Gram matrix's Cholesky met a
/// non-positive pivot (kappa(A)^2 overwhelmed the precision).  The serving
/// layer catches exactly this type and retries the job with TSQR in the same
/// session (JobStats::cholesky_fallbacks).
class CholeskyQrUnstable : public std::runtime_error {
 public:
  explicit CholeskyQrUnstable(const std::string& what) : std::runtime_error(what) {}
};

struct CholeskyQr2Options {
  /// Collective variant for the Gram (and refinement) all-reduces.
  coll::Alg allreduce_alg = coll::Alg::Auto;
  /// Mixed precision: run the first pass (gram, Cholesky, solve) in float
  /// and let the second, double-precision pass act as iterative refinement.
  bool factor_in_float = false;
  /// A-priori guard: estimated kappa(A) above which CholeskyQrUnstable is
  /// thrown before attempting the Cholesky (0 disables; the Cholesky itself
  /// still guards a-posteriori).  The estimate costs O(n^2) local flops per
  /// power-iteration step and no extra communication.
  double max_condition = 0.0;
  /// Power-iteration steps for the condition estimate.
  int condition_iters = 12;
};

/// Result: an explicit orthonormal basis (this rank's rows, distributed like
/// the input) and the replicated n x n upper-triangular R with A = Q R.
struct ExplicitQr {
  la::Matrix Q;  ///< this rank's rows of the m x n orthonormal factor
  la::Matrix R;  ///< n x n upper triangular, replicated on every rank
};

/// Factor a distributed tall-skinny matrix (m >= n, any row distribution)
/// by two CholeskyQR passes.  Collective; throws CholeskyQrUnstable when the
/// input is too ill-conditioned for the working precision (deterministically
/// — all ranks see the same replicated Gram, so all ranks throw together).
ExplicitQr cholesky_qr2(backend::Comm& comm, la::ConstMatrixView A_local,
                        const CholeskyQr2Options& opts = {});

/// min_x ||A x - B||_F over CholeskyQR2: x = R^{-1} (Q^T B), with the Q^T B
/// product summed by one more k-column all-reduce.  Returns the n x k
/// solution replicated on every rank.  Collective; throws CholeskyQrUnstable
/// like cholesky_qr2 (the serving layer's fast-path least-squares driver).
la::Matrix cholesky_qr2_least_squares(backend::Comm& comm, la::ConstMatrixView A_local,
                                      la::ConstMatrixView B_local,
                                      const CholeskyQr2Options& opts = {});

/// The condition estimate behind the guard, exposed for tests and the
/// dispatch-threshold docs: sqrt(lambda_max / lambda_min) of an SPD Gram
/// matrix, lambda_max by power iteration and lambda_min by inverse iteration
/// through a Cholesky of a copy (deterministic all-ones starts).  Returns
/// +inf when the Gram is not positive definite in double — already beyond
/// any finite guard.  Purely local.
double estimate_condition_from_gram(la::ConstMatrixView gram, int iters);

}  // namespace qr3d::core
