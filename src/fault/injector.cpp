#include "fault/injector.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "la/error.hpp"

namespace qr3d::fault {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Plan Plan::random_kills(int P, int kills, std::uint64_t max_step, std::uint64_t seed) {
  return random_faults(P, kills, 0, max_step, seed);
}

Plan Plan::random_stalls(int P, int stalls, std::uint64_t max_step, std::uint64_t seed) {
  return random_faults(P, 0, stalls, max_step, seed);
}

Plan Plan::random_faults(int P, int kills, int stalls, std::uint64_t max_step,
                         std::uint64_t seed) {
  QR3D_CHECK(P >= 1, "fault::Plan::random_faults: need at least one rank");
  QR3D_CHECK(kills >= 0 && stalls >= 0 && kills + stalls <= P,
             "fault::Plan::random_faults: kills + stalls out of range");
  QR3D_CHECK(max_step >= 1, "fault::Plan::random_faults: max_step must be >= 1");
  // Draw kills + stalls DISTINCT ranks by a seeded partial Fisher-Yates
  // shuffle — kills first, so random_faults(P, k, 0, ...) reproduces the
  // historical random_kills draw bit-for-bit.
  std::vector<int> ranks(static_cast<std::size_t>(P));
  for (int p = 0; p < P; ++p) ranks[static_cast<std::size_t>(p)] = p;
  std::uint64_t state = seed;
  Plan plan;
  for (int k = 0; k < kills + stalls; ++k) {
    const std::size_t i = static_cast<std::size_t>(k) +
                          splitmix64(state) % static_cast<std::uint64_t>(P - k);
    std::swap(ranks[static_cast<std::size_t>(k)], ranks[i]);
    const std::uint64_t step = 1 + splitmix64(state) % max_step;
    const Action action = k < kills ? Action::Kill : Action::Stall;
    plan.events.push_back(Event{ranks[static_cast<std::size_t>(k)], step, action, false});
  }
  return plan;
}

void Injector::install(Plan plan, int P) {
  QR3D_CHECK(P >= 1, "fault::Injector: need at least one rank");
  for (const Event& e : plan.events) {
    QR3D_CHECK(e.rank >= 0 && e.rank < P, "fault::Plan: event rank out of range");
    QR3D_CHECK(e.step >= 1, "fault::Plan: event step must be >= 1 (steps are 1-based)");
  }
  plan_ = std::move(plan);
  P_ = P;
  armed_ = !plan_.empty();
  steps_.assign(static_cast<std::size_t>(P), 0);
  fired_.assign(plan_.events.size(), 0);
  dead_.reset(new std::atomic<bool>[static_cast<std::size_t>(P)]);
  stalled_.reset(new std::atomic<bool>[static_cast<std::size_t>(P)]);
  for (int p = 0; p < P; ++p) {
    dead_[static_cast<std::size_t>(p)].store(false, std::memory_order_relaxed);
    stalled_[static_cast<std::size_t>(p)].store(false, std::memory_order_relaxed);
  }
}

void Injector::reset_run() {
  if (!armed_) return;
  std::fill(steps_.begin(), steps_.end(), 0);
  for (int p = 0; p < P_; ++p) {
    dead_[static_cast<std::size_t>(p)].store(false, std::memory_order_relaxed);
    stalled_[static_cast<std::size_t>(p)].store(false, std::memory_order_relaxed);
  }
  // every_run events rearm; one-shot events stay consumed.
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    if (plan_.events[i].every_run) fired_[i] = 0;
  }
}

void Injector::before_op(int rank, const std::atomic<bool>& aborted) {
  if (!armed_) return;
  const std::uint64_t step = ++steps_[static_cast<std::size_t>(rank)];
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const Event& e = plan_.events[i];
    if (e.rank != rank || e.step != step || fired_[i] != 0) continue;
    fired_[i] = 1;
    if (e.action == Action::Kill) throw detail::InjectedKill{rank};
    // Stall: record the fail-slow rank (release: a driver reading stalls()
    // after the run sees it), then let the backend's hook preempt — the
    // simulator's virtual deadline throws from the hook instead of ever
    // blocking wall time.
    stalled_[static_cast<std::size_t>(rank)].store(true, std::memory_order_release);
    if (stall_hook_) stall_hook_(rank);
    // Hang this rank until the machine aborts.  The driver's request_abort()
    // must win the race — poll the abort flag, never sleep unconditionally
    // long, and surface the same abort error a blocked recv would, so the
    // machine unwinds and stays reusable.
    while (!aborted.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    throw std::runtime_error("qr3d::fault: machine aborted while rank stalled by fault plan");
  }
}

void Injector::mark_dead(int rank) {
  dead_[static_cast<std::size_t>(rank)].store(true, std::memory_order_release);
}

bool Injector::is_dead(int rank) const {
  if (!armed_) return false;
  return dead_[static_cast<std::size_t>(rank)].load(std::memory_order_acquire);
}

std::vector<int> Injector::deaths() const {
  std::vector<int> out;
  if (!armed_) return out;
  for (int p = 0; p < P_; ++p) {
    if (dead_[static_cast<std::size_t>(p)].load(std::memory_order_acquire)) out.push_back(p);
  }
  return out;
}

std::vector<int> Injector::stalls() const {
  std::vector<int> out;
  if (!armed_) return out;
  for (int p = 0; p < P_; ++p) {
    if (stalled_[static_cast<std::size_t>(p)].load(std::memory_order_acquire)) out.push_back(p);
  }
  return out;
}

}  // namespace qr3d::fault
