// Deterministic fault plans: the injection vocabulary of the fault subsystem.
//
// A fault::Plan scripts what goes wrong and when: kill (the rank's thread
// unwinds and its channels go dead) or stall (the rank blocks until the
// machine aborts) rank r at logical step s, where a rank's logical step
// counter advances by one at every point-to-point comm operation it issues
// (send or recv), starting at 1.  Counting comm ops — not wall time — is
// what makes injection deterministic and backend-independent: the same plan
// fires at the same point of the same SPMD execution on the simulator and
// on the real threaded backend, which is what lets the conformance suite
// pin recovered results across backends bitwise.
//
// Install a plan on an idle machine with backend::Machine::set_fault_plan().
// Events are one-shot by default: once fired, an event stays consumed across
// run() calls until a new plan is installed — so a serving layer that
// retries a failed session on the surviving ranks observes the retry
// *succeed*, exactly like a real rank that died once.  Set
// Event::every_run = true for a fault that re-fires on every run (used to
// test retry exhaustion).
//
// Grounding: the kill/detect/recover loop follows the coded-computing model
// of "Coded Computing for Fault-Tolerant Parallel QR Decomposition"
// (arXiv 2311.11943); see fault/coded_tsqr.hpp for the recovery side.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace qr3d::fault {

/// What happens to the faulted rank when its event fires.
enum class Action {
  Kill,   ///< the rank dies: unwinds immediately, channels report RankDead
  Stall,  ///< the rank hangs: blocks until the machine aborts
};

/// One scripted fault: `action` on `rank` when its logical comm-op counter
/// reaches `step` (1 = the rank's first send/recv).
struct Event {
  int rank = -1;
  std::uint64_t step = 1;
  Action action = Action::Kill;
  /// Re-fire on every run() instead of once per installed plan.
  bool every_run = false;
};

/// A deterministic fault schedule: a list of scripted events, or a seeded
/// random draw over (rank, step) for sweep-style testing.
struct Plan {
  std::vector<Event> events;

  bool empty() const { return events.empty(); }

  /// Script: kill `rank` at logical step `step`.
  static Plan kill(int rank, std::uint64_t step) {
    Plan p;
    p.events.push_back(Event{rank, step, Action::Kill, false});
    return p;
  }

  /// Script: stall `rank` at logical step `step` (until the machine aborts).
  static Plan stall(int rank, std::uint64_t step) {
    Plan p;
    p.events.push_back(Event{rank, step, Action::Stall, false});
    return p;
  }

  /// Seeded random plan: `kills` distinct ranks out of P, each killed at a
  /// step drawn uniformly from [1, max_step].  Deterministic in `seed`
  /// (splitmix64), so a "random" sweep is exactly reproducible.
  static Plan random_kills(int P, int kills, std::uint64_t max_step, std::uint64_t seed);

  /// Seeded random plan of stalls only: `stalls` distinct ranks, each
  /// stalled at a step drawn uniformly from [1, max_step].
  static Plan random_stalls(int P, int stalls, std::uint64_t max_step, std::uint64_t seed);

  /// Seeded random mixed plan: `kills` + `stalls` DISTINCT ranks (a rank is
  /// killed or stalled, never both), steps drawn uniformly from
  /// [1, max_step].  random_faults(P, k, 0, s, seed) draws exactly the same
  /// events as random_kills(P, k, s, seed) — chaos sweeps that add stalls to
  /// an existing kill seed keep the kill schedule bit-identical.
  static Plan random_faults(int P, int kills, int stalls, std::uint64_t max_step,
                            std::uint64_t seed);
};

/// The error a dead rank's channels surface: thrown by a surviving rank's
/// recv (or communicator split) when the peer it is waiting on has been
/// killed, and by backend::Machine::run() when injected deaths left the run
/// incomplete but no survivor errored.  Derives std::runtime_error so
/// existing machine-failure handling keeps working; fault-aware layers
/// (fault::coded_tsqr, serve::BatchSolver) catch the concrete type and
/// recover instead.
class RankDeath : public std::runtime_error {
 public:
  RankDeath(int rank, const std::string& what) : std::runtime_error(what), rank_(rank) {}
  /// Global rank (world numbering) of the dead peer.
  int rank() const { return rank_; }

 private:
  int rank_;
};

namespace detail {

/// Internal unwind token thrown *by the injector on the victim's own thread*
/// when a Kill event fires.  Deliberately not derived from std::exception:
/// algorithm- or user-level `catch (const std::exception&)` must not swallow
/// a death — only the machine's runner catches this, marks the rank dead,
/// and keeps the run going for the survivors.
struct InjectedKill {
  int rank = -1;
};

}  // namespace detail

}  // namespace qr3d::fault
