#include "fault/coded_tsqr.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "coll/coll.hpp"
#include "fault/plan.hpp"
#include "la/blas.hpp"
#include "la/error.hpp"
#include "la/flops.hpp"
#include "la/householder.hpp"
#include "la/lu.hpp"
#include "la/packing.hpp"
#include "la/qr_eg_serial.hpp"
#include "la/triangular.hpp"

namespace qr3d::fault {

namespace {

constexpr int kTagUpsweep = 8111;
constexpr int kTagDownsweep = 8112;
constexpr int kTagStatus = 8113;
constexpr int kTagRecover = 8114;
constexpr int kTagFinal = 8115;

/// One stored internal node of this rank's path through the reduction tree
/// (same shape as core::tsqr's — kept only for the clean downsweep).
struct TreeNode {
  int partner;
  la::Matrix V;
  la::Matrix T;
};

/// Checksum weight of rank p in checksum j: x_p^j with x_p the p-th
/// Chebyshev point of the P-point grid on [-1, 1].  Distinct nodes make
/// every square recovery subsystem a nonsingular Vandermonde system, and
/// Chebyshev spacing keeps its conditioning growing like ~2^e with the
/// number of dead ranks e, instead of the ~P^e of naive integer nodes
/// (p+1)^j — see the practical bound on f in coded_tsqr.hpp.
double weight(int p, int j, int P) {
  constexpr double kPi = 3.14159265358979323846;
  const double node = std::cos(kPi * (2.0 * static_cast<double>(p) + 1.0) /
                               (2.0 * static_cast<double>(P)));
  return std::pow(node, static_cast<double>(j));
}

/// Solve the e x e system M x = rhs[k] for every k (Gaussian elimination
/// with partial pivoting, factored once).  M is row-major, overwritten; each
/// rhs column is overwritten with its solution.
void solve_inplace(int e, std::vector<double>& M, std::vector<std::vector<double>>& rhs) {
  std::vector<int> perm(static_cast<std::size_t>(e));
  for (int i = 0; i < e; ++i) perm[static_cast<std::size_t>(i)] = i;
  auto at = [&](int r, int c) -> double& {
    return M[static_cast<std::size_t>(perm[static_cast<std::size_t>(r)] * e + c)];
  };
  for (int k = 0; k < e; ++k) {
    int piv = k;
    for (int r = k + 1; r < e; ++r)
      if (std::abs(at(r, k)) > std::abs(at(piv, k))) piv = r;
    std::swap(perm[static_cast<std::size_t>(k)], perm[static_cast<std::size_t>(piv)]);
    // rhs stays in VIRTUAL row order throughout (col[r] pairs with at(r, .)),
    // so exchanging virtual rows k and piv of the matrix exchanges rhs rows
    // k and piv — not the physical rows perm maps them to.
    for (auto& col : rhs)
      std::swap(col[static_cast<std::size_t>(k)], col[static_cast<std::size_t>(piv)]);
    QR3D_ASSERT(at(k, k) != 0.0, "coded_tsqr: singular recovery system");
    for (int r = k + 1; r < e; ++r) {
      const double l = at(r, k) / at(k, k);
      at(r, k) = 0.0;
      for (int c = k + 1; c < e; ++c) at(r, c) -= l * at(k, c);
      for (auto& col : rhs)
        col[static_cast<std::size_t>(r)] -= l * col[static_cast<std::size_t>(k)];
    }
  }
  for (auto& col : rhs) {
    for (int r = e - 1; r >= 0; --r) {
      double s = col[static_cast<std::size_t>(r)];
      for (int c = r + 1; c < e; ++c) s -= at(r, c) * col[static_cast<std::size_t>(c)];
      col[static_cast<std::size_t>(r)] = s / at(r, r);
    }
  }
}

}  // namespace

CodedTsqrResult coded_tsqr(backend::Comm& comm, la::ConstMatrixView A_local,
                           CodedTsqrOptions opts) {
  const int P = comm.size();
  const int me = comm.rank();
  const la::index_t mp = A_local.rows();
  const la::index_t n = A_local.cols();
  QR3D_CHECK(mp >= n, "coded_tsqr: every rank needs at least n rows (m/n >= P)");
  QR3D_CHECK(opts.f >= 1 && opts.f <= P, "coded_tsqr: f must be in [1, P]");
  const int keeper = P - 1;  // checksum home, off the tree root
  const std::size_t L = static_cast<std::size_t>(la::packed_upper_size(n));
  const int f = opts.f;

  // --- Local QR (identical kernel choice to core::tsqr). -------------------
  la::Matrix V0, T0, R;
  if (opts.tsqr.local_recursive_threshold > 0) {
    la::QrFactors fac = la::qr_factor_recursive<double>(A_local, opts.tsqr.local_recursive_threshold);
    V0 = std::move(fac.V);
    T0 = std::move(fac.T_);
    R = std::move(fac.R);
  } else {
    la::Matrix F = la::copy<double>(A_local);
    T0 = la::Matrix(n, n);
    la::geqrt(F.view(), T0.view());
    V0 = la::extract_v<double>(F.view());
    R = la::extract_r<double>(F.view());
  }
  comm.charge_flops(la::flops::geqrt(mp, n));

  // The original local block, kept verbatim for the recovery round.
  const std::vector<double> packed0 = la::pack_upper(R.view());

  // --- Encode: f weighted checksums reduced to the keeper, one message. ----
  std::vector<double> checksums(static_cast<std::size_t>(f) * L);
  for (int j = 0; j < f; ++j) {
    const double w = weight(me, j, P);
    for (std::size_t i = 0; i < L; ++i) checksums[static_cast<std::size_t>(j) * L + i] = w * packed0[i];
  }
  comm.charge_flops(static_cast<double>(f) * static_cast<double>(L));
  coll::reduce(comm, keeper, checksums, coll::Alg::Binomial);

  // --- Upsweep: plain TSQR combines + one completeness word per message. ---
  bool complete = true;
  std::vector<TreeNode> nodes;
  int parent = -1;
  for (int mask = 1; mask < P; mask <<= 1) {
    if ((me & mask) != 0) {
      parent = me - mask;
      std::vector<double> payload;
      payload.reserve(1 + L);
      payload.push_back(complete ? 1.0 : 0.0);
      const std::vector<double> pr = la::pack_upper(R.view());
      payload.insert(payload.end(), pr.begin(), pr.end());
      comm.send(parent, std::move(payload), kTagUpsweep);
      break;
    }
    if (me + mask < P) {
      std::vector<double> payload;
      try {
        payload = comm.recv(me + mask, kTagUpsweep);
      } catch (const RankDeath&) {
        // Child's subtree is gone; continue with the partial aggregate and
        // let the status phase route everyone into recovery.
        complete = false;
        continue;
      }
      if (payload.front() != 1.0) complete = false;
      la::Matrix Rq = la::unpack_upper(n, std::vector<double>(payload.begin() + 1, payload.end()));
      la::Matrix stacked(2 * n, n);
      la::assign<double>(stacked.block(0, 0, n, n), R.view());
      la::assign<double>(stacked.block(n, 0, n, n), Rq.view());
      la::Matrix Tl(n, n);
      la::geqrt(stacked.view(), Tl.view());
      comm.charge_flops(la::flops::geqrt(2 * n, n));
      R = la::extract_r<double>(stacked.view());
      nodes.push_back(TreeNode{me + mask, la::extract_v<double>(stacked.view()), std::move(Tl)});
    }
  }

  // --- Status: root direct-sends the mode to every rank.  Direct (not via
  // the tree) so no survivor's status depends on an intermediate rank that
  // may have died after forwarding its aggregate. ---------------------------
  bool recovery;
  if (me == 0) {
    recovery = !complete;
    for (int p = 1; p < P; ++p) comm.send(p, {recovery ? 1.0 : 0.0}, kTagStatus);
  } else {
    // Root dead => RankDeath propagates: unrecoverable session failure.
    recovery = comm.recv(0, kTagStatus).front() == 1.0;
  }

  if (!recovery) {
    // --- Clean downsweep + Householder reconstruction: verbatim core::tsqr
    // arithmetic, so the zero-fault result is bitwise identical. -----------
    la::Matrix B;
    if (me == 0) {
      B = la::Matrix::identity(n);
    } else {
      B = la::from_vector(n, n, comm.recv(parent, kTagDownsweep));
    }
    for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
      la::Matrix C(2 * n, n);
      la::assign<double>(C.block(0, 0, n, n), B.view());
      la::apply_q<double>(it->V.view(), it->T.view(), la::Op::NoTrans, C.view());
      comm.charge_flops(la::flops::larfb(2 * n, n, n));
      B = la::copy<double>(C.block(0, 0, n, n));
      comm.send(it->partner, la::to_vector(C.block(n, 0, n, n)), kTagDownsweep);
    }

    la::Matrix W(mp, n);
    la::assign<double>(W.block(0, 0, n, n), B.view());
    la::apply_q<double>(V0.view(), T0.view(), la::Op::NoTrans, W.view());
    comm.charge_flops(la::flops::larfb(mp, n, n));

    CodedTsqrResult out;
    std::vector<double> u_flat(static_cast<std::size_t>(n * n));
    if (me == 0) {
      la::LuSignShift lu = la::lu_sign_shift<double>(la::ConstMatrixView(W.block(0, 0, n, n)));
      comm.charge_flops(la::flops::lu(n));

      la::Matrix Tk = la::copy<double>(lu.U.view());
      for (la::index_t j = 0; j < n; ++j)
        for (la::index_t i = 0; i <= j; ++i) Tk(i, j) *= lu.S[static_cast<std::size_t>(j)];
      la::trsm(la::Side::Right, la::Uplo::Lower, la::Op::ConjTrans, la::Diag::Unit, 1.0,
               lu.L.view(), Tk.view());
      comm.charge_flops(la::flops::trsm(n, n));
      la::make_triangular(la::Uplo::Upper, Tk.view());

      for (la::index_t i = 0; i < n; ++i)
        for (la::index_t j = i; j < n; ++j) R(i, j) *= -lu.S[static_cast<std::size_t>(i)];

      out.qr.V = la::Matrix(mp, n);
      la::assign<double>(out.qr.V.block(0, 0, n, n), lu.L.view());
      if (mp > n) {
        la::MatrixView lower = out.qr.V.block(n, 0, mp - n, n);
        la::assign<double>(lower, W.block(n, 0, mp - n, n));
        la::trsm(la::Side::Right, la::Uplo::Upper, la::Op::NoTrans, la::Diag::NonUnit, 1.0,
                 lu.U.view(), lower);
        comm.charge_flops(la::flops::trsm(n, mp - n));
      }
      out.qr.T = std::move(Tk);
      out.qr.R = std::move(R);
      u_flat = la::to_vector(lu.U.view());
    }

    coll::broadcast(comm, 0, u_flat, opts.tsqr.u_bcast_alg);
    if (me != 0) {
      la::Matrix U = la::from_vector(n, n, u_flat);
      out.qr.V = std::move(W);
      la::trsm(la::Side::Right, la::Uplo::Upper, la::Op::NoTrans, la::Diag::NonUnit, 1.0, U.view(),
               out.qr.V.view());
      comm.charge_flops(la::flops::trsm(n, mp));
    }
    return out;
  }

  // --- Recovery: rebuild R from the surviving blocks + checksums. ----------
  if (me != 0) {
    std::vector<double> payload = packed0;
    if (me == keeper) payload.insert(payload.end(), checksums.begin(), checksums.end());
    comm.send(0, std::move(payload), kTagRecover);

    const std::vector<double> fin = comm.recv(0, kTagFinal);
    const int e = static_cast<int>(fin.front());
    CodedTsqrResult out;
    out.recovered = true;
    for (int i = 0; i < e; ++i) out.lost.push_back(static_cast<int>(fin[1 + static_cast<std::size_t>(i)]));
    out.qr.R = la::unpack_upper(
        n, std::vector<double>(fin.begin() + 1 + e, fin.end()));
    return out;
  }

  // Root: collect every rank's original block; deaths surface per-recv.
  std::vector<std::vector<double>> blocks(static_cast<std::size_t>(P));
  blocks[0] = packed0;
  std::vector<double> C;
  std::vector<int> dead;
  for (int p = 1; p < P; ++p) {
    try {
      std::vector<double> payload = comm.recv(p, kTagRecover);
      blocks[static_cast<std::size_t>(p)].assign(payload.begin(),
                                                 payload.begin() + static_cast<std::ptrdiff_t>(L));
      if (p == keeper)
        C.assign(payload.begin() + static_cast<std::ptrdiff_t>(L), payload.end());
    } catch (const RankDeath&) {
      if (p == keeper)
        throw RankDeath(p, "coded_tsqr: checksum keeper (rank " + std::to_string(p) +
                               ") died; the run is unrecoverable");
      dead.push_back(p);
    }
  }
  const int e = static_cast<int>(dead.size());
  if (e > f)
    throw RankDeath(dead.front(), "coded_tsqr: " + std::to_string(e) + " ranks died but only " +
                                      std::to_string(f) + " checksums were encoded");

  if (e > 0) {
    // Subtract the surviving weighted blocks from the first e checksums; the
    // remainder is the e x e Vandermonde image of the dead blocks.
    std::vector<std::vector<double>> rhs(L, std::vector<double>(static_cast<std::size_t>(e)));
    for (int j = 0; j < e; ++j) {
      for (std::size_t i = 0; i < L; ++i) {
        double s = C[static_cast<std::size_t>(j) * L + i];
        for (int p = 0; p < P; ++p) {
          const auto& b = blocks[static_cast<std::size_t>(p)];
          if (!b.empty()) s -= weight(p, j, P) * b[i];
        }
        rhs[i][static_cast<std::size_t>(j)] = s;
      }
    }
    std::vector<double> M(static_cast<std::size_t>(e) * static_cast<std::size_t>(e));
    for (int j = 0; j < e; ++j)
      for (int i = 0; i < e; ++i)
        M[static_cast<std::size_t>(j * e + i)] = weight(dead[static_cast<std::size_t>(i)], j, P);
    solve_inplace(e, M, rhs);
    comm.charge_flops(2.0 * static_cast<double>(e) * static_cast<double>(P) * static_cast<double>(L) +
                      2.0 * static_cast<double>(e) * static_cast<double>(e) * static_cast<double>(L));
    for (int i = 0; i < e; ++i) {
      auto& b = blocks[static_cast<std::size_t>(dead[static_cast<std::size_t>(i)])];
      b.resize(L);
      for (std::size_t k = 0; k < L; ++k) b[k] = rhs[k][static_cast<std::size_t>(i)];
    }
  }

  la::Matrix stacked(static_cast<la::index_t>(P) * n, n);
  for (int p = 0; p < P; ++p) {
    la::Matrix Rp = la::unpack_upper(n, blocks[static_cast<std::size_t>(p)]);
    la::assign<double>(stacked.block(static_cast<la::index_t>(p) * n, 0, n, n), Rp.view());
  }
  la::Matrix Tl(n, n);
  la::geqrt(stacked.view(), Tl.view());
  comm.charge_flops(la::flops::geqrt(static_cast<la::index_t>(P) * n, n));
  la::Matrix Rtrue = la::extract_r<double>(stacked.view());

  std::vector<double> fin;
  fin.reserve(1 + static_cast<std::size_t>(e) + L);
  fin.push_back(static_cast<double>(e));
  for (int d : dead) fin.push_back(static_cast<double>(d));
  const std::vector<double> pt = la::pack_upper(Rtrue.view());
  fin.insert(fin.end(), pt.begin(), pt.end());
  for (int p = 1; p < P; ++p) {
    if (std::find(dead.begin(), dead.end(), p) != dead.end()) continue;
    comm.send(p, std::vector<double>(fin), kTagFinal);
  }

  CodedTsqrResult out;
  out.recovered = true;
  out.lost = std::move(dead);
  out.qr.R = std::move(Rtrue);
  return out;
}

}  // namespace qr3d::fault
