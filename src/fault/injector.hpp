// The per-machine fault-injection engine shared by both execution backends.
//
// An Injector owns the installed fault::Plan plus the runtime state needed
// to fire it deterministically: a per-rank logical comm-op counter (bumped
// by the backend at every send and recv), per-event fired flags (one-shot
// semantics across runs), and the per-rank death flags surviving ranks poll
// to detect a dead peer.
//
// Threading contract (what keeps this TSan-clean):
//   * install() and reset_run() are driver-only, called while the machine is
//     idle; the machine's run-dispatch handshake orders them against worker
//     access.
//   * before_op(rank) is called only on rank's own thread — the step counter
//     and fired flags are effectively thread-private.
//   * mark_dead()/is_dead()/deaths() use atomics: a victim's runner thread
//     stores with release, detecting peers load with acquire, so everything
//     the victim published (messages sent before dying) is visible to a
//     survivor that observed the death.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "fault/plan.hpp"

namespace qr3d::fault {

class Injector {
 public:
  /// Install `plan` for a P-rank machine (driver-only, machine idle).
  /// Resets all step counters, fired flags and death flags; an empty plan
  /// disarms injection entirely.
  void install(Plan plan, int P);

  /// Per-run reset (driver-only, machine idle): clears step counters and
  /// death flags but keeps fired flags, so one-shot events stay consumed on
  /// the next run.
  void reset_run();

  /// True when a non-empty plan is installed — backends skip all per-op
  /// bookkeeping when disarmed, so the common case costs one branch.
  bool armed() const { return armed_; }

  /// Fault hook, called on `rank`'s own thread before every send/recv.
  /// Advances the rank's logical step; if an un-fired event matches, fires
  /// it: Kill throws detail::InjectedKill (the runner catches it and marks
  /// the rank dead); Stall first records the rank stalled, then gives the
  /// backend's stall hook a chance to preempt (see set_stall_hook), and
  /// finally blocks until `aborted` turns true, throwing the backend's abort
  /// error (a std::runtime_error) — so an abort always wins against an
  /// injected stall.
  void before_op(int rank, const std::atomic<bool>& aborted);

  /// Backend-side stall behavior override, invoked on the stalling rank's
  /// own thread when a Stall event fires (after the stalled flag is set,
  /// before the wall-clock abort-poll loop).  A hook that THROWS replaces
  /// the wall block entirely — the simulator's virtual-deadline enforcement
  /// advances the rank's cost clock to the session deadline and throws
  /// health::SessionTimeout, making fail-slow detection bit-reproducible on
  /// the predicted clock.  A hook that returns falls through to the wall
  /// block.  Driver-only, machine idle; survives install()/reset_run().
  void set_stall_hook(std::function<void(int)> hook) { stall_hook_ = std::move(hook); }

  /// Global ranks whose Stall event fired during the current/last run
  /// (ascending).  The fail-slow analogue of deaths(): the serving layer
  /// quarantines these after a session timeout.  Driver-only, machine idle.
  std::vector<int> stalls() const;

  /// Runner-side: record `rank` as dead (release) after catching its
  /// InjectedKill.
  void mark_dead(int rank);

  /// Survivor-side dead-peer poll (acquire).  Safe with no plan installed.
  bool is_dead(int rank) const;

  /// Global ranks that died (ascending).  Driver-only, machine idle.
  std::vector<int> deaths() const;

 private:
  Plan plan_;
  bool armed_ = false;
  int P_ = 0;
  std::vector<std::uint64_t> steps_;          // per-rank, own-thread only
  std::vector<char> fired_;                   // per-event, victim-thread only
  std::unique_ptr<std::atomic<bool>[]> dead_; // per-rank, cross-thread
  std::unique_ptr<std::atomic<bool>[]> stalled_;  // per-rank, cross-thread
  std::function<void(int)> stall_hook_;       // backend override of the wall block
};

}  // namespace qr3d::fault
