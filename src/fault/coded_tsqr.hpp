// Checksum-protected TSQR: the [BDG+15] reduction tree of core/tsqr.hpp
// armored with a linear erasure code over the per-rank R-blocks, so the
// factorization completes even when up to f ranks die mid-reduction (see
// fault/plan.hpp for how deaths are injected and detected).
//
// The code exploits the Gram identity R^T R = A^T A = sum_p R_p^T R_p: the
// true R is the R-factor of the stacked per-rank R_p blocks, so protecting
// the n x n R_p blocks protects the whole factorization.  Before the
// reduction tree runs, every rank contributes f weighted copies of its
// packed R_p to a checksum reduce rooted at the *keeper* (rank P-1, chosen
// off the tree root so the checksum never travels with the data it
// protects):
//
//   C_j = sum_p w_jp R_p,   w_jp = x_p^j,   j = 0..f-1,
//
// with x_p = cos(pi (2p+1) / 2P) the p-th Chebyshev point on [-1, 1].
//
// The upsweep then proceeds exactly as in plain TSQR — byte-identical
// arithmetic — except each message carries one extra completeness word, and
// a rank whose child died (fault::RankDeath on the upsweep recv) continues
// with its partial aggregate and clears the flag.  After the upsweep the
// root direct-sends a one-word status to every rank:
//
//   * clean    — the normal downsweep + Householder reconstruction runs and
//                the result is bitwise identical to core::tsqr (V, T, R);
//   * recovery — every surviving rank re-sends its original packed R_p to
//                the root (the keeper appends the checksums); ranks whose
//                blocks never arrive (<= f of them, or the run is
//                unrecoverable) are reconstructed by solving the e x e
//                Vandermonde system the weights define; the root QRs the
//                stacked alive + recovered blocks and direct-sends the true
//                R to every survivor.  The recovered result is R-only.
//
// Deaths at timings the code cannot cover (during the encode reduce, after
// a clean status was issued, or the keeper/root themselves) surface as
// fault::RankDeath from run() — a *session* failure the serving layer heals
// by requeueing (see docs/SERVING.md), not a hang.
#pragma once

#include <vector>

#include "backend/comm.hpp"
#include "core/qr_result.hpp"
#include "core/tsqr.hpp"
#include "la/matrix.hpp"

namespace qr3d::fault {

struct CodedTsqrOptions {
  /// Number of redundant checksum blocks == maximum dead ranks the
  /// factorization survives.  Must be in [1, P].
  ///
  /// Accuracy caveat: reconstructing e dead blocks solves an e x e
  /// Vandermonde system whose conditioning grows roughly like 2^e even on
  /// the Chebyshev-spaced encoding nodes used here (integer nodes would be
  /// far worse, ~P^e).  The recovered R loses about e bits of the ~52-bit
  /// double mantissa, so f up to ~20 simultaneous deaths stays well within
  /// working precision; far beyond that, recovery still completes but the
  /// reconstructed blocks degrade gracefully rather than staying at
  /// round-off.  Typical deployments encode the small f they expect to
  /// survive (1-4), where the solve is accurate to machine precision.
  int f = 1;
  /// Options forwarded to the underlying TSQR (local kernel, U broadcast
  /// algorithm) — the zero-fault path matches core::tsqr under the same
  /// options bitwise.
  core::TsqrOptions tsqr;
};

struct CodedTsqrResult {
  /// Zero-fault: the full factorization, bitwise identical to core::tsqr.
  /// After recovery: R only (root's R replicated to every survivor); V and T
  /// are empty — the tree Q died with the dead ranks.
  core::DistributedQr qr;
  /// True when the recovery path ran (the result is R-only).
  bool recovered = false;
  /// Ranks whose R-blocks were reconstructed from checksums (ascending).
  std::vector<int> lost;
};

/// Collective over `comm`; same data-distribution contract as core::tsqr
/// (each rank owns m_p >= n rows, root is rank 0).  Throws fault::RankDeath
/// when more than `f` blocks are missing or a structurally required rank
/// (root, checksum keeper) died.
CodedTsqrResult coded_tsqr(backend::Comm& comm, la::ConstMatrixView A_local,
                           CodedTsqrOptions opts = {});

}  // namespace qr3d::fault
