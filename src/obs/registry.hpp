// Lock-cheap metrics: counters, gauges, and log-scale histograms, interned
// by name in a process-local registry.
//
// Design targets (docs/OBSERVABILITY.md has the prose version):
//
//   * Hot-path cost is one relaxed atomic RMW per increment/record — no
//     mutex, no allocation.  The registry mutex is taken only to intern a
//     new metric by name and to take snapshots.
//   * Metric handles are plain references into node-stable std::map storage,
//     so callers resolve them once and keep them for the registry's
//     lifetime.
//   * A disabled registry (Registry{false}) hands out shared dead metrics
//     whose mutators are a single predictable branch — near-zero cost, so
//     instrumentation can stay compiled in unconditionally.
//   * Histograms use fixed log-spaced buckets (no rebalancing, no locking on
//     record), which makes quantile queries approximate: a reported pXX is
//     the geometric midpoint of the bucket holding the nearest-rank sample,
//     within one bucket width (~12% relative with the default layout) of the
//     exact order statistic.  Exact percentiles over raw samples live in
//     obs::percentile below — the single implementation both the library
//     and bench_util route through.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace qr3d::obs {

/// Monotonic event counter.  inc() is one relaxed fetch_add; value() is a
/// relaxed load.  Cross-counter consistency is the *caller's* serialization:
/// writers and readers that agree on a lock (serve::BatchSolver bumps every
/// serving counter under its own mutex and copies them under the same mutex)
/// get tear-free multi-counter snapshots.
class Counter {
 public:
  explicit Counter(bool live = true) : live_(live) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t delta = 1) {
    if (live_) v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
  const bool live_;
};

/// Last-value / accumulating gauge over a double (seconds, ratios, sizes).
class Gauge {
 public:
  explicit Gauge(bool live = true) : live_(live) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) {
    if (live_) v_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) {
    if (!live_) return;
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
  const bool live_;
};

/// Bucket layout for Histogram.  (A free struct, not nested, so its default
/// member values are usable in Histogram's own default arguments.)
struct HistogramOptions {
  /// Smallest / largest finite value resolved by its own bucket; values
  /// outside land in the underflow/overflow buckets (still counted, and
  /// still clamped by observed min/max in quantile()).  Defaults cover
  /// nanoseconds through ~30 years in seconds, and any latency ratio a
  /// drift detector could meet.
  double min_value = 1e-9;
  double max_value = 1e9;
  /// Log-spaced bucket count between min_value and max_value.  The default
  /// (20 per decade over 18 decades) bounds quantile error at ~12% relative.
  int buckets = 360;
};

/// Fixed-bucket log-scale histogram.  record() is one relaxed fetch_add on
/// the owning bucket plus count/sum updates; quantile() walks the buckets
/// (nearest-rank) and returns the bucket's geometric midpoint, clamped to
/// the observed min/max so single-valued and narrow distributions report
/// sensible numbers.
class Histogram {
 public:
  using Options = HistogramOptions;

  explicit Histogram(Options opts = {}, bool live = true);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded value (0 when empty).
  double min() const;
  double max() const;

  /// Approximate nearest-rank quantile, q clamped to [0, 1]; 0 when empty.
  double quantile(double q) const;

  /// Forget every sample (the drift detector resets its since-last-profile
  /// histogram after re-profiling).  Not atomic against concurrent record();
  /// callers serialize reset vs record externally.
  void reset();

  /// One coherent-enough read of the summary stats (taken metric-by-metric;
  /// callers needing hard consistency serialize against writers).
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  Snapshot snapshot() const;

 private:
  std::size_t bucket_of(double v) const;
  double bucket_mid(std::size_t b) const;

  Options opts_;
  const bool live_;
  double log_min_ = 0.0;      // std::log(opts_.min_value)
  double inv_log_step_ = 0.0; // buckets / (log(max) - log(min))
  // [0] underflow, [1..buckets] log-spaced, [buckets+1] overflow.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Named-metric registry.  Metrics are interned on first use and live as
/// long as the registry; handles are stable references.  counter()/gauge()/
/// histogram() take a mutex only on the interning path — resolve handles
/// once, then mutate lock-free.
class Registry {
 public:
  explicit Registry(bool enabled = true)
      : enabled_(enabled), dead_hist_(HistogramOptions{}, false) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  bool enabled() const { return enabled_; }

  /// Intern (or find) a metric by name.  On a disabled registry every call
  /// returns the same shared dead metric whose mutators no-op.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, Histogram::Options opts = {});

  /// Point-in-time copy of every metric (names sorted).  Taken under the
  /// registry mutex, so no metric is half-interned; per-metric values are
  /// relaxed reads (see Counter's consistency note).
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Histogram::Snapshot> histograms;
  };
  Snapshot snapshot() const;

 private:
  const bool enabled_;
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  Counter dead_counter_{false};
  Gauge dead_gauge_{false};
  Histogram dead_hist_;
};

/// Exact nearest-rank percentile of `xs` at quantile `q`, the shared
/// implementation behind bench_util::percentile and the tests' reference
/// values.  Hardened edges: empty input returns 0; a single sample is every
/// percentile of itself; q is clamped into [0, 1] (so q<=0 is the minimum
/// and q>=1 the maximum, never an underflowed index).  NaN q is treated
/// as 0.  Takes `xs` by value and sorts the copy.
double percentile(std::vector<double> xs, double q);

}  // namespace qr3d::obs
