#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace qr3d::obs {

const char* trace_kind_name(TraceEvent::Kind k) {
  switch (k) {
    case TraceEvent::Kind::Send: return "send";
    case TraceEvent::Kind::Recv: return "recv";
    case TraceEvent::Kind::Flops: return "flops";
    case TraceEvent::Kind::Span: return "span";
    case TraceEvent::Kind::Instant: return "instant";
  }
  return "?";
}

void TraceBuffer::record(TraceEvent e) {
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  Stripe& s =
      stripes_[static_cast<std::size_t>(e.rank & 0x7fffffff) % kStripes];
  std::lock_guard<std::mutex> lock(s.mu);
  s.events.push_back(std::move(e));
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::vector<TraceEvent> out;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    out.insert(out.end(), s.events.begin(), s.events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.seq < b.seq; });
  return out;
}

std::size_t TraceBuffer::size() const {
  std::size_t n = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    n += s.events.size();
  }
  return n;
}

void TraceBuffer::clear() {
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.events.clear();
  }
}

namespace {

// Fixed eagerly at static-init time (not lazily on first use): a lazy epoch
// would be stamped *after* the first caller captured its own now(), making
// the very first event's timestamp slightly negative.
const std::chrono::steady_clock::time_point kTraceEpoch = std::chrono::steady_clock::now();

std::chrono::steady_clock::time_point trace_epoch() { return kTraceEpoch; }

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_num(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

double trace_now() { return trace_seconds(std::chrono::steady_clock::now()); }

double trace_seconds(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration<double>(tp - trace_epoch()).count();
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 128 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

  bool first = true;
  auto emit = [&](const std::string& row) {
    if (!first) out += ',';
    first = false;
    out += '\n';
    out += row;
  };

  // Process-name metadata for every track present.
  bool track_seen[2] = {false, false};
  for (const TraceEvent& e : events) {
    if (e.track == 0) track_seen[0] = true;
    if (e.track == 1) track_seen[1] = true;
  }
  if (track_seen[0]) {
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"machine\"}}");
  }
  if (track_seen[1]) {
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"serve\"}}");
  }

  char buf[96];
  for (const TraceEvent& e : events) {
    std::string row = "{\"name\":\"";
    switch (e.kind) {
      case TraceEvent::Kind::Send:
        std::snprintf(buf, sizeof(buf), "send to %d", e.peer);
        row += buf;
        break;
      case TraceEvent::Kind::Recv:
        std::snprintf(buf, sizeof(buf), "recv from %d", e.peer);
        row += buf;
        break;
      case TraceEvent::Kind::Flops:
        row += "flops";
        break;
      default:
        append_escaped(row, e.name);
    }
    row += "\",\"cat\":\"";
    row += trace_kind_name(e.kind);
    const bool instant = e.kind == TraceEvent::Kind::Instant;
    std::snprintf(buf, sizeof(buf), "\",\"ph\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":",
                  instant ? "i" : "X", e.track, e.rank);
    row += buf;
    append_num(row, e.t0 * 1e6);
    if (instant) {
      row += ",\"s\":\"t\"";
    } else {
      row += ",\"dur\":";
      append_num(row, std::max(0.0, e.t1 - e.t0) * 1e6);
    }
    row += ",\"args\":{";
    bool arg_first = true;
    auto arg = [&](const char* key, double v) {
      if (!arg_first) row += ',';
      arg_first = false;
      row += '"';
      row += key;
      row += "\":";
      append_num(row, v);
    };
    if (e.kind == TraceEvent::Kind::Send || e.kind == TraceEvent::Kind::Recv) {
      arg("peer", e.peer);
      arg("words", e.words);
      arg("tag", e.tag);
    } else if (e.kind == TraceEvent::Kind::Flops) {
      arg("flops", e.words);
    } else {
      if (e.id != 0) arg("id", static_cast<double>(e.id));
      if (e.words != 0.0) arg("n", e.words);
      if (e.peer >= 0) arg("peer", e.peer);
    }
    arg("seq", static_cast<double>(e.seq));
    row += "}}";
    emit(row);
  }

  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const std::vector<TraceEvent>& events, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << chrome_trace_json(events);
  return static_cast<bool>(f);
}

}  // namespace qr3d::obs
