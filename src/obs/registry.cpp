#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qr3d::obs {

namespace {

// CAS-loop accumulate / min / max over std::atomic<double> (fetch_add on
// floating atomics is C++20-optional; the loop is portable and the metrics
// are not contended enough for it to matter).
void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(Options opts, bool live) : opts_(opts), live_(live) {
  if (opts_.buckets < 1) opts_.buckets = 1;
  if (!(opts_.min_value > 0.0)) opts_.min_value = 1e-9;
  if (!(opts_.max_value > opts_.min_value)) opts_.max_value = opts_.min_value * 10.0;
  log_min_ = std::log(opts_.min_value);
  inv_log_step_ = opts_.buckets / (std::log(opts_.max_value) - log_min_);
  buckets_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(opts_.buckets) + 2);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

std::size_t Histogram::bucket_of(double v) const {
  if (!(v >= opts_.min_value)) return 0;  // underflow (also NaN)
  if (v >= opts_.max_value) return buckets_.size() - 1;
  const auto b =
      static_cast<std::size_t>((std::log(v) - log_min_) * inv_log_step_) + 1;
  return std::min(b, buckets_.size() - 2);
}

double Histogram::bucket_mid(std::size_t b) const {
  if (b == 0) return opts_.min_value;
  if (b == buckets_.size() - 1) return opts_.max_value;
  return std::exp(log_min_ + (static_cast<double>(b) - 0.5) / inv_log_step_);
}

void Histogram::record(double v) {
  if (!live_) return;
  if (std::isnan(v)) v = 0.0;
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  if (std::isnan(q) || q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest rank, matching obs::percentile's index arithmetic.
  const auto k = static_cast<std::uint64_t>(
      q * static_cast<double>(total - 1) + 0.5);
  std::uint64_t cum = 0;
  std::size_t hit = buckets_.size() - 1;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    cum += buckets_[b].load(std::memory_order_relaxed);
    if (cum > k) {
      hit = b;
      break;
    }
  }
  return std::clamp(bucket_mid(hit), min(), max());
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count();
  s.sum = sum();
  s.min = min();
  s.max = max();
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

Counter& Registry::counter(const std::string& name) {
  if (!enabled_) return dead_counter_;
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.try_emplace(name, true).first->second;
}

Gauge& Registry::gauge(const std::string& name) {
  if (!enabled_) return dead_gauge_;
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_.try_emplace(name, true).first->second;
}

Histogram& Registry::histogram(const std::string& name, Histogram::Options opts) {
  if (!enabled_) return dead_hist_;
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_.try_emplace(name, opts, true).first->second;
}

Registry::Snapshot Registry::snapshot() const {
  Snapshot s;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) s.counters.emplace(name, c.value());
  for (const auto& [name, g] : gauges_) s.gauges.emplace(name, g.value());
  for (const auto& [name, h] : histograms_) s.histograms.emplace(name, h.snapshot());
  return s;
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  if (std::isnan(q) || q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::sort(xs.begin(), xs.end());
  auto idx = static_cast<std::size_t>(q * static_cast<double>(xs.size() - 1) + 0.5);
  idx = std::min(idx, xs.size() - 1);
  return xs[idx];
}

}  // namespace qr3d::obs
