// Comm-op and serving-span event tracing: the TraceSink hook that
// backend::Machine implementations and serve::BatchSolver emit into, a
// thread-safe TraceBuffer collector, and a Chrome trace_event JSON exporter
// (open the file in chrome://tracing or https://ui.perfetto.dev).
//
// Event semantics by emitter:
//
//   * sim::Machine emits Send/Recv/Flops with t0/t1 on the cost model's
//     *predicted* clock (the per-rank alpha-beta-gamma critical-path time,
//     offset so consecutive run() sessions stay monotonic).  The sim trace
//     is therefore the expected timeline — the oracle — and test_obs.cpp
//     replays it op-by-op against the model, bit-exactly.
//   * backend::ThreadMachine emits Send/Recv with wall-clock t0/t1 (seconds
//     since the process trace epoch, trace_now()).  Comparing the two
//     traces for the same run is exactly the measured-vs-predicted story
//     of the paper, per operation.
//   * Both backends emit a "rank_death" Instant when fault injection kills
//     a rank; serve::BatchSolver emits job spans (submit/queued/exec),
//     "requeue" instants on fault recovery, and per-round session spans.
//
// Emission order contract: a backend records the Send event *before* making
// the message visible to the receiver, so for any matched pair the send's
// global sequence number is below the recv's — consumers can FIFO-pair the
// k-th send(src→dst, tag) with the k-th recv(dst←src, tag) in seq order.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace qr3d::obs {

/// One trace event.  Field use varies by kind; unused fields are left at
/// their defaults.  `track`/`rank` map onto Chrome's pid/tid: track 0 holds
/// the machine's per-rank timelines, track 1 the serving layer's per-job
/// lanes.
struct TraceEvent {
  enum class Kind {
    Send,     ///< comm op: rank sent `words` doubles to `peer` (tag `tag`)
    Recv,     ///< comm op: rank received `words` doubles from `peer`
    Flops,    ///< sim only: `words` holds the flop count charged
    Span,     ///< named interval [t0, t1] (serving spans, sessions)
    Instant,  ///< named point event at t0 (==t1): rank_death, requeue, ...
  };

  Kind kind = Kind::Instant;
  int track = 0;          ///< Chrome pid: 0 = machine, 1 = serving
  int rank = 0;           ///< Chrome tid: machine rank or job lane
  int peer = -1;          ///< comm ops: the other endpoint's global rank
  int tag = 0;            ///< comm ops: message tag
  double words = 0.0;     ///< payload doubles (Send/Recv) or flops (Flops)
  double t0 = 0.0;        ///< start, seconds on the emitter's clock
  double t1 = 0.0;        ///< end, seconds (== t0 for Instant)
  std::uint64_t id = 0;   ///< serving: job sequence number / session round
  std::string name;       ///< Span/Instant label; empty for comm ops
  std::uint64_t seq = 0;  ///< global arrival order, stamped by TraceBuffer
};

/// Human-readable kind name ("send", "recv", "flops", "span", "instant").
const char* trace_kind_name(TraceEvent::Kind k);

/// Where emitters deliver events.  record() must be safe to call from any
/// rank thread concurrently; implementations should be cheap — backends
/// call it on every message when tracing is enabled.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(TraceEvent e) = 0;
};

/// The standard collector: appends events into per-thread-striped vectors
/// (mutex per stripe, so concurrent ranks rarely contend) and stamps each
/// with a global sequence number.  events() merges the stripes sorted by
/// that sequence — total order of arrival.
class TraceBuffer final : public TraceSink {
 public:
  TraceBuffer() = default;
  void record(TraceEvent e) override;

  /// Merged copy of everything recorded so far, sorted by `seq`.  Safe to
  /// call concurrently with record(), but the natural use is after the
  /// traced work quiesced.
  std::vector<TraceEvent> events() const;

  std::size_t size() const;
  void clear();

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
  };
  static constexpr std::size_t kStripes = 16;
  std::array<Stripe, kStripes> stripes_;
  std::atomic<std::uint64_t> seq_{0};
};

/// Seconds since the process-wide trace epoch (a steady_clock instant fixed
/// on first use).  Every wall-clock emitter — ThreadMachine comm ops and
/// the serving layer's spans — uses this one clock, so their events align
/// on a shared timeline.
double trace_now();

/// Convert a steady_clock time point onto the trace_now() timeline.
double trace_seconds(std::chrono::steady_clock::time_point tp);

/// Render events as Chrome trace_event JSON (the {"traceEvents": [...]}
/// object form).  Send/Recv/Flops/Span become "ph":"X" complete events with
/// microsecond ts/dur; Instant becomes "ph":"i".  Track 0/1 get process_name
/// metadata "machine"/"serve" so Perfetto labels the groups.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

/// chrome_trace_json + write to `path`.  Returns false (and writes nothing)
/// when the file cannot be opened.
bool write_chrome_trace(const std::vector<TraceEvent>& events, const std::string& path);

}  // namespace qr3d::obs
