#include "cost/model.hpp"

#include <algorithm>
#include <cmath>

namespace qr3d::cost {

double lg(int P) {
  int l = 0;
  while ((1 << l) < P) ++l;
  return std::max(1, l);
}

namespace {

double ratio(double m, double n, int P) { return std::max(1.0, n * P / m); }

}  // namespace

// --- Table 1. ----------------------------------------------------------------

Costs scatter(double B, int P) { return {0.0, (P - 1.0) * B, lg(P)}; }
Costs gather(double B, int P) { return {0.0, (P - 1.0) * B, lg(P)}; }
Costs broadcast(double B, int P) {
  return {0.0, std::min(B * lg(P), B + P), lg(P)};
}
Costs reduce(double B, int P) {
  const double w = std::min(B * lg(P), B + P);
  return {w, w, lg(P)};
}
Costs all_gather(double B, int P) { return {0.0, (P - 1.0) * B, lg(P)}; }
Costs all_reduce(double B, int P) {
  const double w = std::min(B * lg(P), B + P);
  return {w, w, lg(P)};
}
Costs reduce_scatter(double B, int P) {
  return {(P - 1.0) * B, (P - 1.0) * B, lg(P)};
}
Costs all_to_all(double B, double Bstar, int P) {
  return {0.0, std::min(B * P * lg(P), (Bstar + static_cast<double>(P) * P) * lg(P)), lg(P)};
}

// --- Matrix multiplication. ----------------------------------------------------

Costs mm_local(double I, double J, double K) { return {2.0 * I * J * K, 0.0, 0.0}; }

Costs mm_1d(double I, double J, double K, int P) {
  // Lemma 3: local work + one reduce/broadcast of the two smaller dims.
  const double maxdim = std::max({I, J, K});
  return {2.0 * I * J * K / P, I * J * K / maxdim, lg(P)};
}

Costs mm_3d(double I, double J, double K, int P) {
  // Lemma 4.
  return {2.0 * I * J * K / P, std::pow(I * J * K / P, 2.0 / 3.0), lg(P)};
}

// --- QR algorithms. ------------------------------------------------------------

Costs tsqr(double m, double n, int P) {
  const double L = lg(P);
  return {2.0 * m * n * n / P + n * n * n * L, n * n * L, L};
}

Costs cholesky_qr2(double m, double n, int P) {
  const Costs ar = all_reduce(n * (n + 1.0) / 2.0, P);
  // Two passes of gram gemm (2mn^2/P) + all-reduce + Cholesky (n^3/3) +
  // trsm (mn^2/P), then the replicated R2*R1 trmm (n^3).
  return {2.0 * (3.0 * m * n * n / P + n * n * n / 3.0 + ar.flops) + n * n * n,
          2.0 * ar.words, 2.0 * ar.msgs};
}

Costs caqr_eg_1d_b(double m, double n, int P, double b) {
  // Eq. (11).
  const double L = lg(P);
  return {2.0 * m * n * n / P + n * b * b * L, n * n + n * b * L, (n / b) * L};
}

Costs caqr_eg_1d(double m, double n, int P, double epsilon) {
  const double b = std::max(1.0, n / std::pow(lg(P), epsilon));
  return caqr_eg_1d_b(m, n, P, b);
}

Costs caqr_eg_3d_b(double m, double n, int P, double b, double bstar) {
  // Eq. (13).
  const double L = lg(P);
  Costs c;
  c.flops = 2.0 * m * n * n / P + n * bstar * bstar * L;
  const double levels = std::max(1.0, std::log2(std::max(2.0, n / b)));
  c.words = m * n / P + n * b + n * bstar * L + std::pow(m * n * n / P, 2.0 / 3.0) +
            ((m * n / P + n) * levels + n * static_cast<double>(P) * P / b) * L;
  c.msgs = (n / bstar) * L;
  return c;
}

Costs caqr_eg_3d(double m, double n, int P, double delta, double epsilon) {
  const double b = std::max(1.0, n / std::pow(ratio(m, n, P), delta));
  const double bstar = std::max(1.0, b / std::pow(lg(P), epsilon));
  return caqr_eg_3d_b(m, n, P, b, bstar);
}

// --- Table rows. ----------------------------------------------------------------

Costs table2_house_2d(double m, double n, int P) {
  return {2.0 * m * n * n / P, n * n / std::sqrt(ratio(m, n, P)), n * lg(P)};
}

Costs table2_caqr(double m, double n, int P) {
  const double r = std::sqrt(ratio(m, n, P));
  return {2.0 * m * n * n / P, n * n / r, r * lg(P) * lg(P)};
}

Costs table2_caqr_eg_3d(double m, double n, int P, double delta) {
  const double r = std::pow(ratio(m, n, P), delta);
  return {2.0 * m * n * n / P, n * n / r, r * lg(P) * lg(P)};
}

Costs table3_house_1d(double m, double n, int P) {
  const double L = lg(P);
  return {2.0 * m * n * n / P, n * n * L, n * L};
}

Costs table3_tsqr(double m, double n, int P) { return tsqr(m, n, P); }

Costs table3_caqr_eg_1d(double m, double n, int P, double epsilon) {
  const double L = lg(P);
  return {2.0 * m * n * n / P + n * n * n * std::pow(L, 1.0 - 2.0 * epsilon),
          n * n * std::pow(L, 1.0 - epsilon), std::pow(L, 1.0 + epsilon)};
}

// --- Lower bounds. ----------------------------------------------------------------

Costs lower_bound_tall_skinny(double m, double n, int P) {
  return {2.0 * m * n * n / P, n * n, lg(P)};
}

Costs lower_bound_squareish(double m, double n, int P) {
  const double r = ratio(m, n, P);
  return {2.0 * m * n * n / P, n * n / std::pow(r, 2.0 / 3.0), std::sqrt(r)};
}

}  // namespace qr3d::cost
