#include "cost/tuner.hpp"

#include <algorithm>
#include <cmath>

#include "la/error.hpp"

namespace qr3d::cost {

namespace {

void check_tunable(const sim::CostParams& machine) {
  // Zero components are legitimate analytical devices (a "pure-latency"
  // machine isolates the message term), but negative or non-finite values —
  // the failure mode of a noisy measured fit — poison the whole grid
  // search, and an all-zero machine makes every plan "optimal".
  QR3D_CHECK(std::isfinite(machine.alpha) && std::isfinite(machine.beta) &&
                 std::isfinite(machine.gamma),
             "tuner: machine parameters must be finite");
  QR3D_CHECK(machine.alpha >= 0.0 && machine.beta >= 0.0 && machine.gamma >= 0.0,
             "tuner: machine parameters must be non-negative — route measured profiles "
             "through cost::fit_params");
  QR3D_CHECK(machine.alpha + machine.beta + machine.gamma > 0.0,
             "tuner: at least one machine parameter must be positive");
}

}  // namespace

Tuned3d tune_3d(double m, double n, int P, const sim::CostParams& machine, int steps) {
  check_tunable(machine);
  Tuned3d best;
  double best_time = -1.0;
  for (int i = 0; i < steps; ++i) {
    const double delta = static_cast<double>(i) / (steps - 1);
    for (int j = 0; j < steps; ++j) {
      const double eps = static_cast<double>(j) / (steps - 1);
      const Costs c = caqr_eg_3d(m, n, P, delta, eps);
      const double t = c.time(machine);
      if (best_time < 0.0 || t < best_time) {
        best_time = t;
        best = Tuned3d{delta, eps, c};
      }
    }
  }
  return best;
}

Tuned1d tune_1d(double m, double n, int P, const sim::CostParams& machine, int steps) {
  check_tunable(machine);
  Tuned1d best;
  double best_time = -1.0;
  for (int j = 0; j < steps; ++j) {
    const double eps = static_cast<double>(j) / (steps - 1);
    const Costs c = caqr_eg_1d(m, n, P, eps);
    const double t = c.time(machine);
    if (best_time < 0.0 || t < best_time) {
      best_time = t;
      best = Tuned1d{eps, c};
    }
  }
  return best;
}

sim::CostParams fit_params(double alpha_seconds, double beta_seconds_per_word,
                           double gamma_seconds_per_flop, std::string name) {
  QR3D_CHECK(std::isfinite(alpha_seconds) && std::isfinite(beta_seconds_per_word) &&
                 std::isfinite(gamma_seconds_per_flop),
             "fit_params: measured parameters must be finite");
  // Floors: measurement noise can drive a fitted parameter to zero or below
  // (e.g. bandwidth time minus latency), but the tuner's ratios only make
  // sense for positive values.  The floors are far below anything a real
  // machine measures, so they only catch degenerate fits.
  sim::CostParams p;
  p.alpha = std::max(alpha_seconds, 1e-9);
  p.beta = std::max(beta_seconds_per_word, 1e-12);
  p.gamma = std::max(gamma_seconds_per_flop, 1e-13);
  p.name = std::move(name);
  return p;
}

}  // namespace qr3d::cost
