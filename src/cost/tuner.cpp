#include "cost/tuner.hpp"

namespace qr3d::cost {

Tuned3d tune_3d(double m, double n, int P, const sim::CostParams& machine, int steps) {
  Tuned3d best;
  double best_time = -1.0;
  for (int i = 0; i < steps; ++i) {
    const double delta = static_cast<double>(i) / (steps - 1);
    for (int j = 0; j < steps; ++j) {
      const double eps = static_cast<double>(j) / (steps - 1);
      const Costs c = caqr_eg_3d(m, n, P, delta, eps);
      const double t = c.time(machine);
      if (best_time < 0.0 || t < best_time) {
        best_time = t;
        best = Tuned3d{delta, eps, c};
      }
    }
  }
  return best;
}

Tuned1d tune_1d(double m, double n, int P, const sim::CostParams& machine, int steps) {
  Tuned1d best;
  double best_time = -1.0;
  for (int j = 0; j < steps; ++j) {
    const double eps = static_cast<double>(j) / (steps - 1);
    const Costs c = caqr_eg_1d(m, n, P, eps);
    const double t = c.time(machine);
    if (best_time < 0.0 || t < best_time) {
      best_time = t;
      best = Tuned1d{eps, c};
    }
  }
  return best;
}

}  // namespace qr3d::cost
