// Closed-form asymptotic cost model: the formulas of Lemmas 5-7, Theorems
// 1-2 and Tables 1-3, with all constants set to 1.
//
// The benches compare these predictions against the simulator's measured
// critical-path counts; EXPERIMENTS.md records the ratios.  Because the
// bounds are asymptotic, agreement means "bounded ratio across sweeps and
// matching growth shape", not pointwise equality.
#pragma once

#include "sim/clock.hpp"

namespace qr3d::cost {

/// Asymptotic (#operations, #words, #messages) triple.
struct Costs {
  double flops = 0.0;
  double words = 0.0;
  double msgs = 0.0;

  /// Predicted runtime under an alpha-beta-gamma machine.
  double time(const sim::CostParams& p) const {
    return p.gamma * flops + p.beta * words + p.alpha * msgs;
  }
};

/// ceil(log2 P), >= 1 (as a double for formula use).
double lg(int P);

// --- Table 1: collectives on blocks of B words over P ranks. ---------------
Costs scatter(double B, int P);
Costs gather(double B, int P);
Costs broadcast(double B, int P);
Costs reduce(double B, int P);
Costs all_gather(double B, int P);
Costs all_reduce(double B, int P);
Costs reduce_scatter(double B, int P);
Costs all_to_all(double B, double Bstar, int P);

// --- Matrix multiplication (Lemmas 2-4). ------------------------------------
Costs mm_local(double I, double J, double K);
Costs mm_1d(double I, double J, double K, int P);
Costs mm_3d(double I, double J, double K, int P);

// --- QR algorithms. ----------------------------------------------------------
/// Lemma 5 (TSQR).
Costs tsqr(double m, double n, int P);

/// CholeskyQR2 (two Gram/Cholesky/solve passes; arXiv 1710.08471): per pass
/// one n x n local gram gemm (2mn^2/P), one all-reduce of the packed upper
/// triangle (n(n+1)/2 words), the replicated Cholesky (n^3/3) and the local
/// triangular solve (mn^2/P); plus the final replicated R2*R1 trmm (n^3).
/// Gemm-dominant: no Householder panel factor anywhere.  Constants are kept
/// (not dropped to asymptotics) so the predicted-time comparison against
/// tsqr() — the serving dispatch and the bench_table3_tallskinny smoke gate
/// — is meaningful at benchmark sizes.
Costs cholesky_qr2(double m, double n, int P);

/// Eq. (11): 1D-CAQR-EG with explicit threshold b.
Costs caqr_eg_1d_b(double m, double n, int P, double b);
/// Theorem 2 parameterization: b = n/(log P)^epsilon.
Costs caqr_eg_1d(double m, double n, int P, double epsilon);

/// Eq. (13): 3D-CAQR-EG with explicit thresholds b, b*.
Costs caqr_eg_3d_b(double m, double n, int P, double b, double bstar);
/// Theorem 1 parameterization: b = n/(nP/m)^delta, b* = b/(log P)^epsilon.
Costs caqr_eg_3d(double m, double n, int P, double delta, double epsilon);

// --- Table 2 (square-ish, m/n = O(P)) and Table 3 (tall-skinny) rows. -------
Costs table2_house_2d(double m, double n, int P);
Costs table2_caqr(double m, double n, int P);
Costs table2_caqr_eg_3d(double m, double n, int P, double delta);
Costs table3_house_1d(double m, double n, int P);
Costs table3_tsqr(double m, double n, int P);
Costs table3_caqr_eg_1d(double m, double n, int P, double epsilon);

// --- Lower bounds (Section 8.3). --------------------------------------------
/// Tall-skinny: Omega(n^2) words, Omega(log P) messages.
Costs lower_bound_tall_skinny(double m, double n, int P);
/// Square-ish: Omega(n^2/(nP/m)^(2/3)) words, Omega((nP/m)^(1/2)) messages.
Costs lower_bound_squareish(double m, double n, int P);

}  // namespace qr3d::cost
