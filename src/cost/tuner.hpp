// Machine-aware parameter tuning (the paper's opening promise: "by varying a
// parameter ... we can tune this algorithm for machines with different
// communication costs").
//
// Grid-searches the tradeoff parameters over their analyzed ranges against
// the closed-form model of cost/model.hpp under a given alpha-beta-gamma
// profile, returning the predicted-optimal (delta, epsilon) — or epsilon
// alone for tall-skinny problems that call 1D-CAQR-EG directly.
//
// The profile may be *declared* (sim/profiles.hpp's stylized machines) or
// *measured*: serve::profile_machine fits (alpha, beta, gamma) from
// micro-benchmarks on a real backend and hands the result here through
// fit_params(), which clamps measurement noise (a bandwidth fit can come out
// non-positive after subtracting latency) to strictly positive floors.  The
// tuners validate positivity so a bad fit fails loudly at this boundary
// instead of silently degenerating the grid search.
#pragma once

#include <string>

#include "cost/model.hpp"

namespace qr3d::cost {

struct Tuned3d {
  double delta = 2.0 / 3.0;
  double epsilon = 1.0;
  Costs predicted;
};

struct Tuned1d {
  double epsilon = 1.0;
  Costs predicted;
};

/// Best (delta, epsilon) for 3D-CAQR-EG on (m, n, P) under `machine`;
/// delta in [0, 1], epsilon in [0, 1] on a `steps`-point grid.
Tuned3d tune_3d(double m, double n, int P, const sim::CostParams& machine, int steps = 33);

/// Best epsilon for 1D-CAQR-EG (tall-skinny direct call).
Tuned1d tune_1d(double m, double n, int P, const sim::CostParams& machine, int steps = 33);

/// Build a CostParams from measured (possibly noisy) per-message latency,
/// per-word transfer time, and per-flop time, clamped to strictly positive
/// floors so the fitted profile is always tunable.  Non-finite inputs throw
/// std::invalid_argument.
sim::CostParams fit_params(double alpha_seconds, double beta_seconds_per_word,
                           double gamma_seconds_per_flop, std::string name = "fitted");

}  // namespace qr3d::cost
