// Cost model of Section 3: alpha-beta-gamma machine with per-metric
// critical-path accounting.
//
// An execution is a DAG whose vertices are tasks (operations, sends,
// receives) on P processor paths plus one edge per send/receive pair.  The
// paper measures #operations, #words and #messages each along critical paths
// of that DAG.  CostClock computes all of them by dynamic programming: each
// processor carries a clock; a message carries the sender's clock; a receive
// folds max(local, sender) into the receiver before adding the receive task's
// weight.  After the run, the per-metric maxima over processors are exactly
// the paper's cost measures.
#pragma once

#include <algorithm>
#include <string>

namespace qr3d::sim {

/// Machine cost parameters: a message of w words costs alpha + w*beta on each
/// endpoint; one arithmetic operation costs gamma.
struct CostParams {
  double alpha = 1.0;
  double beta = 1e-2;
  double gamma = 1e-6;
  std::string name = "default";
};

/// Per-processor critical-path clock (see file comment).  `flops`, `words`
/// and `msgs` are independent per-metric path maxima; `time` is the maximum
/// weight of any path under gamma*F + beta*W + alpha*S.
struct CostClock {
  double flops = 0.0;
  double words = 0.0;
  double msgs = 0.0;
  double time = 0.0;

  /// Fold a message-carried clock into this one (receive-edge DP step).
  void merge(const CostClock& other) {
    flops = std::max(flops, other.flops);
    words = std::max(words, other.words);
    msgs = std::max(msgs, other.msgs);
    time = std::max(time, other.time);
  }

  /// Per-metric max of two clocks.
  static CostClock max(const CostClock& a, const CostClock& b) {
    CostClock c = a;
    c.merge(b);
    return c;
  }
};

/// Aggregate (volume) counters, summed over all processors — useful as a
/// sanity complement to the critical-path metrics.
struct CostTotals {
  double flops = 0.0;
  double words_sent = 0.0;
  double msgs_sent = 0.0;

  CostTotals& operator+=(const CostTotals& o) {
    flops += o.flops;
    words_sent += o.words_sent;
    msgs_sent += o.msgs_sent;
    return *this;
  }
};

}  // namespace qr3d::sim
