#include "sim/comm.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <stdexcept>
#include <tuple>

#include "la/error.hpp"

namespace qr3d::sim {

void SimComm::send(int dst, std::vector<double>&& payload, int tag) {
  const int me_global = group_->members[static_cast<std::size_t>(rank_)];
  machine_->injector_.before_op(me_global, machine_->aborted_);
  const double w = static_cast<double>(payload.size());
  const CostParams& cp = machine_->params();
  const double t_before = clock_->time;
  clock_->msgs += 1;
  clock_->words += w;
  clock_->time += cp.alpha + cp.beta * w;
  totals_->msgs_sent += 1;
  totals_->words_sent += w;
  machine_->check_deadline(*clock_, me_global);

  const int dst_global = group_->members[static_cast<std::size_t>(dst)];
  // Trace before the mailbox push: the send event must be globally ordered
  // before the recv event it will pair with (see obs/trace.hpp).
  if (obs::TraceSink* ts = machine_->trace_.get()) {
    obs::TraceEvent ev;
    ev.kind = obs::TraceEvent::Kind::Send;
    ev.rank = me_global;
    ev.peer = dst_global;
    ev.tag = tag;
    ev.words = w;
    ev.t0 = machine_->trace_base_ + t_before;
    ev.t1 = machine_->trace_base_ + clock_->time;
    ts->record(std::move(ev));
  }

  detail::Envelope e;
  e.src_global = me_global;
  e.context = group_->context;
  e.tag = tag;
  e.payload = std::move(payload);
  e.clock = *clock_;
  machine_->mailboxes_[static_cast<std::size_t>(dst_global)].push(std::move(e));
}

std::vector<double> SimComm::recv(int src, int tag) {
  const int me_global = group_->members[static_cast<std::size_t>(rank_)];
  machine_->injector_.before_op(me_global, machine_->aborted_);
  const int src_global = group_->members[static_cast<std::size_t>(src)];
  detail::Envelope e = machine_->mailboxes_[static_cast<std::size_t>(me_global)].pop_match(
      src_global, group_->context, tag, [this]() { return machine_->aborted(); },
      [this, src_global]() { return machine_->injector_.is_dead(src_global); });

  const double w = static_cast<double>(e.payload.size());
  const CostParams& cp = machine_->params();
  const double t_before = clock_->time;
  clock_->merge(e.clock);
  clock_->msgs += 1;
  clock_->words += w;
  clock_->time += cp.alpha + cp.beta * w;
  machine_->check_deadline(*clock_, me_global);
  if (obs::TraceSink* ts = machine_->trace_.get()) {
    obs::TraceEvent ev;
    ev.kind = obs::TraceEvent::Kind::Recv;
    ev.rank = me_global;
    ev.peer = src_global;
    ev.tag = tag;
    ev.words = w;
    // t0 is the rank's own clock before the merge — the interval [t0, t1]
    // covers both the wait for the sender's path and the receive charge, so
    // each rank's traced timeline stays contiguous.
    ev.t0 = machine_->trace_base_ + t_before;
    ev.t1 = machine_->trace_base_ + clock_->time;
    ts->record(std::move(ev));
  }
  return std::move(e.payload);
}

void SimComm::charge_flops(double f) {
  const double t_before = clock_->time;
  clock_->flops += f;
  clock_->time += f * machine_->params().gamma;
  totals_->flops += f;
  machine_->check_deadline(*clock_, group_->members[static_cast<std::size_t>(rank_)]);
  if (f != 0.0) {
    if (obs::TraceSink* ts = machine_->trace_.get()) {
      obs::TraceEvent ev;
      ev.kind = obs::TraceEvent::Kind::Flops;
      ev.rank = group_->members[static_cast<std::size_t>(rank_)];
      ev.words = f;
      ev.t0 = machine_->trace_base_ + t_before;
      ev.t1 = machine_->trace_base_ + clock_->time;
      ts->record(std::move(ev));
    }
  }
}

std::shared_ptr<backend::CommImpl> SimComm::split(int color, int key) {
  auto& g = *group_;
  const int n = size();

  // The rendezvous must not outlive an abort: a rank that threw will never
  // arrive, so waiters poll the abort flag instead of sleeping forever.  A
  // group member killed by the fault plan will likewise never arrive, so
  // waiters also poll for member deaths and surface fault::RankDeath.
  auto wait_or_abort = [&](std::unique_lock<std::mutex>& lk, auto&& pred) {
    while (!g.cv.wait_for(lk, std::chrono::milliseconds(1), pred)) {
      // Death before abort: see Mailbox::pop_match — a death usually causes
      // the abort, and checking in this order surfaces RankDeath
      // deterministically.
      for (int member : g.members) {
        if (machine_->injector_.is_dead(member))
          throw fault::RankDeath(member, "qr3d::sim: rank " + std::to_string(member) +
                                             " died during communicator split");
      }
      if (machine_->aborted())
        throw std::runtime_error("qr3d::sim: machine aborted during communicator split");
    }
  };

  std::unique_lock<std::mutex> lock(g.mu);
  if (g.colors.empty()) {
    g.colors.assign(static_cast<std::size_t>(n), 0);
    g.keys.assign(static_cast<std::size_t>(n), 0);
    g.out_group.assign(static_cast<std::size_t>(n), nullptr);
    g.out_rank.assign(static_cast<std::size_t>(n), -1);
  }
  g.colors[static_cast<std::size_t>(rank_)] = color;
  g.keys[static_cast<std::size_t>(rank_)] = key;
  g.arrived++;

  if (g.arrived == n) {
    // Last arrival builds all result groups.
    std::map<int, std::vector<std::pair<int, int>>> by_color;  // color -> (key, local rank)
    for (int p = 0; p < n; ++p) {
      const int c = g.colors[static_cast<std::size_t>(p)];
      if (c >= 0) by_color[c].emplace_back(g.keys[static_cast<std::size_t>(p)], p);
    }
    for (auto& [c, v] : by_color) {
      std::sort(v.begin(), v.end());
      auto ng = std::make_shared<detail::GroupShared>();
      ng->context = machine_->new_context();
      ng->members.reserve(v.size());
      for (std::size_t i = 0; i < v.size(); ++i) {
        const int local = v[i].second;
        ng->members.push_back(g.members[static_cast<std::size_t>(local)]);
        g.out_group[static_cast<std::size_t>(local)] = ng;
        g.out_rank[static_cast<std::size_t>(local)] = static_cast<int>(i);
      }
    }
    g.ready = true;
    g.cv.notify_all();
  } else {
    wait_or_abort(lock, [&g]() { return g.ready; });
  }

  auto out = g.out_group[static_cast<std::size_t>(rank_)];
  const int out_rank = g.out_rank[static_cast<std::size_t>(rank_)];
  g.out_group[static_cast<std::size_t>(rank_)] = nullptr;

  // Last pickup resets the coordination state for the next split().
  g.picked_up++;
  if (g.picked_up == n) {
    g.arrived = 0;
    g.picked_up = 0;
    g.ready = false;
    g.colors.clear();
    g.keys.clear();
    g.out_group.clear();
    g.out_rank.clear();
    g.cv.notify_all();
  } else {
    // Wait until everyone picked up, so a rank cannot race into the next
    // split() round on this communicator while state is being reset.
    wait_or_abort(lock, [&g]() { return g.picked_up == 0; });
  }

  if (!out) return nullptr;
  return std::make_shared<SimComm>(machine_, std::move(out), out_rank, clock_, totals_);
}

}  // namespace qr3d::sim
