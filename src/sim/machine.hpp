// Simulated distributed-memory machine: P processors with private memories
// exchanging asynchronous point-to-point messages (the model of Section 3).
//
// Each simulated processor runs as one OS thread executing the same SPMD
// body, mirroring MPI semantics: matched send/recv on (source, communicator,
// tag) with FIFO ordering per triple.  This is the substitution for an MPI
// cluster documented in DESIGN.md — the paper's claims are statements about
// the alpha-beta-gamma cost model, which this machine implements exactly and
// instruments (see sim/clock.hpp).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "backend/machine.hpp"
#include "fault/injector.hpp"
#include "obs/trace.hpp"
#include "sim/clock.hpp"

namespace qr3d::sim {

class SimComm;

namespace detail {

struct Envelope {
  int src_global = -1;
  std::uint64_t context = 0;
  int tag = 0;
  std::vector<double> payload;
  CostClock clock;
};

class Mailbox {
 public:
  void push(Envelope e);
  /// Block until a message from (src, context, tag) arrives, then return the
  /// first such message (FIFO per key).  Throws if the machine aborts, or
  /// fault::RankDeath once `src_dead` reports the sender killed and no
  /// already-delivered message matches (messages sent before the death are
  /// still received in order — death is detected, not retroactive).
  Envelope pop_match(int src_global, std::uint64_t context, int tag,
                     const std::function<bool()>& aborted,
                     const std::function<bool()>& src_dead);
  void notify_abort();
  void clear();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> q_;
};

/// Shared per-communicator state used to coordinate split() without
/// messages (communicator construction is bookkeeping, not communication).
struct GroupShared {
  std::uint64_t context = 0;
  std::vector<int> members;  // global ranks, indexed by local rank

  // split() coordination.
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  int picked_up = 0;
  bool ready = false;
  std::vector<int> colors, keys;  // indexed by local rank
  // Result per local rank: the new group and the local rank within it.
  std::vector<std::shared_ptr<GroupShared>> out_group;
  std::vector<int> out_rank;
};

}  // namespace detail

/// The simulated machine.  Construct with the processor count and cost
/// parameters, then call run() with an SPMD body; afterwards query the
/// measured critical-path costs.
class Machine : public backend::Machine {
 public:
  explicit Machine(int P, CostParams params = {});

  backend::Kind kind() const override { return backend::Kind::Simulated; }
  int size() const override { return P_; }
  const CostParams& params() const override { return params_; }

  /// Execute `body` on all P simulated processors (one thread each) and wait
  /// for completion.  Cost clocks and mailboxes are reset first.  If any rank
  /// throws, all ranks are aborted and the lowest-ranked exception rethrown.
  void run(const std::function<void(backend::Comm&)>& body) override;

  /// Wall-clock seconds of the last run() — the *host's* time running the
  /// simulation, unrelated to the simulated clocks below.
  double last_wall_seconds() const override { return wall_seconds_; }

  /// Critical-path costs of the last run: per-metric maxima over processors.
  CostClock critical_path() const;

  /// Clock of an individual rank after the last run.
  const CostClock& rank_clock(int p) const;

  /// Aggregate volume counters of the last run (summed over processors).
  CostTotals totals() const;

  /// Machine::request_abort — interrupt the run in flight, if any: sets the
  /// abort flag every blocked mailbox wait (and every injected stall) polls
  /// and wakes all receivers, so the run unwinds with the abort error and
  /// the machine stays reusable.  Returns false while idle (the request is
  /// dropped, matching ThreadMachine's contract).
  bool request_abort() override;

  /// Deterministic fault injection (see fault/plan.hpp): the simulator is
  /// the oracle the thread backend's fault behavior conforms to.
  void set_fault_plan(fault::Plan plan) override { injector_.install(std::move(plan), P_); }
  std::vector<int> last_run_deaths() const override { return injector_.deaths(); }
  std::vector<int> last_run_stalls() const override { return injector_.stalls(); }

  /// Virtual-clock session deadline (`seconds` of simulated time per run; 0
  /// clears): a rank whose cost clock crosses it throws
  /// health::SessionTimeout, and an injected Stall advances the stalling
  /// rank's clock to EXACTLY the deadline and throws — no wall time passes,
  /// and the firing point is a deterministic function of the cost model, so
  /// tests pin it bitwise (the simulator is the fail-slow oracle).  Enforced
  /// by this backend: returns true.
  bool set_session_deadline(double seconds) override {
    session_deadline_ = seconds;
    return true;
  }
  bool last_run_timed_out() const override {
    return timed_out_.load(std::memory_order_acquire);
  }

  /// Event tracing on the *predicted* clock: every send/recv/flop charge
  /// emits a TraceEvent whose t0/t1 are the rank's cost-model time before
  /// and after the charge, offset by the accumulated critical path of
  /// earlier runs so a multi-session trace stays monotonic.  The sim trace
  /// is the expected timeline (oracle) the thread backend's wall-clock
  /// trace is compared against.
  void set_trace_sink(std::shared_ptr<obs::TraceSink> sink) override {
    trace_ = std::move(sink);
  }

 private:
  friend class SimComm;

  std::uint64_t new_context() { return next_context_++; }
  bool aborted() const { return aborted_; }
  /// Deadline check at every cost-charge point (called on the rank's own
  /// thread after its clock advanced): past the deadline, record the timeout
  /// and throw health::SessionTimeout.
  void check_deadline(const CostClock& clock, int rank);

  int P_;
  CostParams params_;
  std::vector<detail::Mailbox> mailboxes_;
  std::vector<CostClock> clocks_;
  std::vector<CostTotals> totals_;
  std::atomic<std::uint64_t> next_context_{1};
  std::atomic<bool> aborted_{false};
  // Serializes request_abort() against run()'s reset/spawn and join windows:
  // an abort request while idle must be dropped, never leak into (or be
  // erased by) the next run's reset.
  std::mutex run_mu_;
  bool run_active_ = false;
  fault::Injector injector_;
  /// Session deadline in simulated seconds (0 = off).  Written driver-side
  /// while idle; read by worker threads (ordered by spawn/join).
  double session_deadline_ = 0.0;
  /// Set (release) by the rank that crossed the deadline; reset per run.
  std::atomic<bool> timed_out_{false};
  double wall_seconds_ = 0.0;
  std::shared_ptr<obs::TraceSink> trace_;
  // Sum of earlier runs' critical-path times: the trace-time offset that
  // keeps consecutive sessions' predicted timelines monotonic.
  double trace_base_ = 0.0;
};

}  // namespace qr3d::sim
