// Representative machine cost profiles (alpha = latency per message,
// beta = time per word, gamma = time per flop), used by the machine-tuning
// experiment (E9): the paper's motivation is that the bandwidth/latency
// tradeoff parameter should be chosen per machine.
//
// Values are stylized ratios, not measurements of specific hardware: what
// matters for the experiment is the alpha/beta/gamma ordering, which spans
// low-latency HPC interconnects to high-latency commodity networks.
#pragma once

#include <array>

#include "sim/clock.hpp"

namespace qr3d::sim::profiles {

/// Tightly-coupled HPC fabric: cheap messages, fast links.
inline CostParams hpc_fabric() { return {1e-6, 1e-9, 1e-11, "hpc-fabric"}; }

/// Commodity cluster: Ethernet-ish latency, decent bandwidth.
inline CostParams commodity_cluster() { return {5e-5, 5e-9, 1e-11, "commodity-cluster"}; }

/// Cloud/virtualized network: high latency, moderate bandwidth.
inline CostParams cloud() { return {1e-3, 2e-8, 1e-11, "cloud"}; }

/// Bandwidth-starved machine: messages cheap relative to moving words.
inline CostParams bandwidth_starved() { return {1e-6, 1e-7, 1e-11, "bandwidth-starved"}; }

inline std::array<CostParams, 4> all() {
  return {hpc_fabric(), commodity_cluster(), cloud(), bandwidth_starved()};
}

}  // namespace qr3d::sim::profiles
