// Communicator handle: the per-rank interface to the simulated machine.
//
// Mirrors the MPI communicator abstraction: point-to-point send/recv matched
// on (source, communicator, tag), plus split() to form sub-communicators
// (e.g. processor-grid fibers for 3D matrix multiplication).  All collectives
// (coll/) and algorithms (core/, mm/) are written against this interface
// only, so porting to real MPI is a mechanical substitution.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/machine.hpp"

namespace qr3d::sim {

class Comm {
 public:
  /// Default-constructed communicators are invalid placeholders (valid() ==
  /// false); they are produced by split(color < 0) and usable as members of
  /// structs built before the real communicator exists.
  Comm() = default;

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(group_->members.size()); }
  const CostParams& params() const { return machine_->params(); }
  Machine& machine() const { return *machine_; }

  /// Asynchronous point-to-point send of `payload` to local rank `dst`.
  /// Charges alpha + beta*|payload| (+1 message, +|payload| words) to this
  /// rank's path and stamps the message with the updated clock.
  void send(int dst, std::vector<double> payload, int tag);

  /// Blocking receive from local rank `src` with matching `tag` (FIFO per
  /// (src, tag)).  Charges the receive task and folds the sender's clock.
  std::vector<double> recv(int src, int tag);

  /// Charge `f` local arithmetic operations to this rank's path.
  void charge_flops(double f);

  /// Collectively split this communicator: ranks passing the same `color`
  /// form a new communicator, ordered by (key, old rank).  Every member of
  /// this communicator must call split (MPI_Comm_split semantics).  Ranks
  /// passing color < 0 receive an invalid (size-0) communicator.
  /// Communicator construction is free in the cost model.
  Comm split(int color, int key);

  /// This rank's critical-path clock (shared with the machine).
  const CostClock& clock() const { return *clock_; }

  bool valid() const { return group_ != nullptr; }

 private:
  friend class Machine;

  Comm(Machine* machine, std::shared_ptr<detail::GroupShared> group, int rank, CostClock* clock,
       CostTotals* totals)
      : machine_(machine), group_(std::move(group)), rank_(rank), clock_(clock),
        totals_(totals) {}

  Machine* machine_ = nullptr;
  std::shared_ptr<detail::GroupShared> group_;
  int rank_ = -1;
  CostClock* clock_ = nullptr;
  CostTotals* totals_ = nullptr;
};

}  // namespace qr3d::sim
