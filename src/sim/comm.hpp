// The simulated backend's communicator implementation.
//
// SimComm realizes backend::CommImpl over the simulated alpha-beta-gamma
// machine: point-to-point send/recv matched on (source, communicator, tag)
// with FIFO ordering, MPI_Comm_split-style split(), and Section 3
// critical-path cost accounting on every message and flop.  Algorithms never
// see this type — they are written against the backend::Comm handle — but
// the machine hands out handles wrapping it, and messages stamp/fold the
// per-rank cost clocks documented in sim/clock.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "backend/comm.hpp"
#include "sim/machine.hpp"

namespace qr3d::sim {

class SimComm : public backend::CommImpl {
 public:
  SimComm(Machine* machine, std::shared_ptr<detail::GroupShared> group, int rank, CostClock* clock,
          CostTotals* totals)
      : machine_(machine), group_(std::move(group)), rank_(rank), clock_(clock),
        totals_(totals) {}

  int rank() const override { return rank_; }
  int size() const override { return static_cast<int>(group_->members.size()); }
  backend::Kind kind() const override { return backend::Kind::Simulated; }
  const CostParams& params() const override { return machine_->params(); }

  /// Charges alpha + beta*|payload| (+1 message, +|payload| words) to this
  /// rank's path and stamps the message with the updated clock.
  void send(int dst, std::vector<double>&& payload, int tag) override;

  /// Charges the receive task and folds the sender's clock.
  std::vector<double> recv(int src, int tag) override;

  /// Charge `f` local arithmetic operations to this rank's path.
  void charge_flops(double f) override;

  /// Communicator construction is free in the cost model.
  std::shared_ptr<backend::CommImpl> split(int color, int key) override;

  /// This rank's critical-path clock (shared with the machine).
  const CostClock* cost_clock() const override { return clock_; }

 private:
  Machine* machine_ = nullptr;
  std::shared_ptr<detail::GroupShared> group_;
  int rank_ = -1;
  CostClock* clock_ = nullptr;
  CostTotals* totals_ = nullptr;
};

}  // namespace qr3d::sim
