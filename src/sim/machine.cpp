#include "sim/machine.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "health/timeout.hpp"
#include "la/error.hpp"
#include "sim/comm.hpp"

namespace qr3d::sim {

namespace detail {

void Mailbox::push(Envelope e) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    q_.push_back(std::move(e));
  }
  cv_.notify_all();
}

Envelope Mailbox::pop_match(int src_global, std::uint64_t context, int tag,
                            const std::function<bool()>& aborted,
                            const std::function<bool()>& src_dead) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    for (auto it = q_.begin(); it != q_.end(); ++it) {
      if (it->src_global == src_global && it->context == context && it->tag == tag) {
        Envelope e = std::move(*it);
        q_.erase(it);
        return e;
      }
    }
    // Death before abort: a peer's death often *causes* the abort (another
    // survivor threw RankDeath first), and the death flag is visible whenever
    // the abort it caused is — checking in this order keeps the surfaced
    // error deterministically RankDeath instead of racing on which flag the
    // waiter observes first.
    if (src_dead())
      throw fault::RankDeath(src_global, "qr3d::sim: rank " + std::to_string(src_global) +
                                             " died before sending the awaited message");
    if (aborted()) throw std::runtime_error("qr3d::sim: machine aborted while waiting for message");
    cv_.wait(lock);
  }
}

void Mailbox::notify_abort() {
  // Taking the mutex serializes with a receiver that has just evaluated its
  // wait predicate but not yet gone to sleep — notifying without it can be
  // lost, leaving the receiver blocked forever after an abort.
  std::lock_guard<std::mutex> lock(mu_);
  cv_.notify_all();
}

void Mailbox::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  q_.clear();
}

}  // namespace detail

Machine::Machine(int P, CostParams params)
    : P_(P), params_(std::move(params)), mailboxes_(static_cast<std::size_t>(P)),
      clocks_(static_cast<std::size_t>(P)), totals_(static_cast<std::size_t>(P)) {
  QR3D_CHECK(P >= 1, "machine needs at least one processor");
  // Virtual-deadline stall semantics: an injected Stall under an armed
  // session deadline does not block wall time at all — the stalling rank's
  // cost clock jumps to EXACTLY the deadline (a stalled rank makes no
  // progress, so the watchdog fires precisely when the deadline passes on
  // the predicted timeline) and throws the typed timeout.  Without a
  // deadline the hook returns and the injector wall-blocks until abort, the
  // pre-watchdog behavior.
  injector_.set_stall_hook([this](int rank) {
    const double deadline = session_deadline_;
    if (deadline <= 0.0) return;
    CostClock& clock = clocks_[static_cast<std::size_t>(rank)];
    clock.time = std::max(clock.time, deadline);
    timed_out_.store(true, std::memory_order_release);
    throw health::SessionTimeout(
        deadline, rank,
        "qr3d::sim: rank " + std::to_string(rank) +
            " stalled past the session deadline of " + std::to_string(deadline) +
            " simulated seconds (fail-slow converted to fail-stop)");
  });
}

void Machine::check_deadline(const CostClock& clock, int rank) {
  const double deadline = session_deadline_;
  if (deadline <= 0.0 || clock.time <= deadline) return;
  timed_out_.store(true, std::memory_order_release);
  throw health::SessionTimeout(
      deadline, rank,
      "qr3d::sim: rank " + std::to_string(rank) + " crossed the session deadline of " +
          std::to_string(deadline) + " simulated seconds at predicted time " +
          std::to_string(clock.time));
}

void Machine::run(const std::function<void(backend::Comm&)>& body) {
  for (auto& mb : mailboxes_) mb.clear();
  for (auto& c : clocks_) c = CostClock{};
  for (auto& t : totals_) t = CostTotals{};
  aborted_ = false;
  timed_out_.store(false, std::memory_order_relaxed);
  next_context_ = 1;
  injector_.reset_run();
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    run_active_ = true;  // after the resets: an abort landing now sticks
  }

  auto world = std::make_shared<detail::GroupShared>();
  world->context = 0;
  world->members.resize(static_cast<std::size_t>(P_));
  for (int p = 0; p < P_; ++p) world->members[static_cast<std::size_t>(p)] = p;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(P_));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(P_));
  for (int p = 0; p < P_; ++p) {
    threads.emplace_back([this, p, &body, &world, &errors]() {
      backend::Comm comm(std::make_shared<SimComm>(this, world, p,
                                                   &clocks_[static_cast<std::size_t>(p)],
                                                   &totals_[static_cast<std::size_t>(p)]));
      try {
        body(comm);
      } catch (const fault::detail::InjectedKill&) {
        // An injected death is not an error of the run: mark the rank dead
        // and wake every blocked receiver so survivors detect it and either
        // recover (fault::coded_tsqr) or fail with fault::RankDeath.
        injector_.mark_dead(p);
        if (obs::TraceSink* ts = trace_.get()) {
          obs::TraceEvent ev;
          ev.kind = obs::TraceEvent::Kind::Instant;
          ev.rank = p;
          ev.name = "rank_death";
          ev.t0 = ev.t1 = trace_base_ + clocks_[static_cast<std::size_t>(p)].time;
          ts->record(std::move(ev));
        }
        for (auto& mb : mailboxes_) mb.notify_abort();
      } catch (...) {
        errors[static_cast<std::size_t>(p)] = std::current_exception();
        aborted_ = true;
        for (auto& mb : mailboxes_) mb.notify_abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    run_active_ = false;
  }
  wall_seconds_ = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  // Advance the trace-time base past this session so the next run's
  // predicted timeline starts where this one ended.
  if (trace_) trace_base_ += critical_path().time;

  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

bool Machine::request_abort() {
  std::lock_guard<std::mutex> lock(run_mu_);
  if (!run_active_) return false;
  aborted_ = true;
  // Wake every blocked receiver; injected stalls poll aborted_ directly.
  for (auto& mb : mailboxes_) mb.notify_abort();
  return true;
}

CostClock Machine::critical_path() const {
  CostClock c;
  for (const auto& rc : clocks_) c.merge(rc);
  return c;
}

const CostClock& Machine::rank_clock(int p) const {
  QR3D_CHECK(p >= 0 && p < P_, "rank out of range");
  return clocks_[static_cast<std::size_t>(p)];
}

CostTotals Machine::totals() const {
  CostTotals t;
  for (const auto& rt : totals_) t += rt;
  return t;
}

}  // namespace qr3d::sim
